//! Query execution over a CapsuleBox (§5): Capsule locating with runtime
//! patterns, stamp filtering, fixed-length matching, and reconstruction.

use crate::boxfile::Archive;
use crate::capsule::{CapsuleMeta, Layout};
use crate::error::{Error, Result};
use crate::extract::nominal::{format_index, parse_index};
use crate::extract::DictPattern;
use crate::pattern::{RuntimePattern, Segment};
use crate::query::lang::{Expr, Query, SearchString};
use crate::query::plan::{plan, Conj, Mode, Plan, SegRef};
use crate::rowset::RowSet;
use crate::stats::QueryStats;
use crate::vector::VectorMeta;
use crate::PAD;
use logparse::{Piece, DEFAULT_DELIMS};
use parking_lot::Mutex;
use pool::Pool;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;
use strsearch::FixedRows;

/// Shards of the decompressed-payload cache. Capsules are assigned by id,
/// so concurrent workers touching different Capsules rarely share a lock.
const CACHE_SHARDS: usize = 16;

/// A wildcard/overflow verification fans out across row chunks only at or
/// above this many candidate rows. Rendering one row costs a few µs while a
/// single worker spawn costs ~0.25–0.75 ms on the virtualized hosts this
/// targets, so thousands of rows must be at stake before threads pay off —
/// selective queries must stay strictly serial to hit their latency budget.
const PARALLEL_VERIFY_MIN_ROWS: usize = 4096;

/// Reconstruction fans out across line chunks only at or above this many
/// lines (same spawn-cost argument as [`PARALLEL_VERIFY_MIN_ROWS`]).
const PARALLEL_RECONSTRUCT_MIN_LINES: usize = 4096;

/// Lower bound on items per parallel chunk: inputs just over the fan-out
/// thresholds engage only a few workers instead of splitting µs-sized
/// slivers across the whole pool.
const MIN_PARALLEL_CHUNK: usize = 1024;

/// The result of a query: matching lines in original log order.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Original (0-based) line numbers, ascending.
    pub line_numbers: Vec<u32>,
    /// The reconstructed lines, parallel to `line_numbers`.
    pub lines: Vec<Vec<u8>>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl QueryResult {
    /// The lines as lossy UTF-8 strings (logs are ASCII in practice).
    pub fn lines_utf8(&self) -> Vec<String> {
        self.lines
            .iter()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect()
    }
}

impl Archive {
    /// Executes a grep-like query command (see [`Query::parse`] for the
    /// language) and reconstructs the matching lines in original order.
    pub fn query(&self, command: &str) -> Result<QueryResult> {
        let query = Query::parse(command)?;
        let start = Instant::now();
        let _trace = telemetry::trace_scope();
        let _query_span = telemetry::span("query");
        telemetry::counter!("query.executed", 1);
        let shared = {
            let _span = telemetry::span("setup");
            ExecShared::new(self)
        };
        let mut ctx = ExecCtx::new(&shared);
        ctx.stats.capsules_total = self.boxed.capsules.len() as u32;

        let line_numbers = if self.use_query_cache {
            match self.cache.get(command) {
                Some(cached) => {
                    ctx.stats.cache_hit = true;
                    telemetry::counter!("query.cache.hits", 1);
                    cached
                }
                None => {
                    telemetry::counter!("query.cache.misses", 1);
                    let lines = ctx.eval_expr(&query.expr)?.into_vec();
                    self.cache.put(command, lines.clone());
                    lines
                }
            }
        } else {
            ctx.eval_expr(&query.expr)?.into_vec()
        };

        let lines = {
            let _span = telemetry::span("reconstruct");
            ctx.reconstruct(&line_numbers)?
        };
        let mut stats = std::mem::take(&mut ctx.stats);
        {
            // `ctx` is plain data over `shared`'s borrow; dropping `shared`
            // is the real teardown (payload buffers return to the arena).
            let _span = telemetry::span("teardown");
            drop(shared);
        }
        stats.elapsed = start.elapsed();
        Ok(QueryResult {
            line_numbers,
            lines,
            stats,
        })
    }

    /// Reconstructs every stored line in original order (the full-decompress
    /// path, used by tests and the `ggrep`-style fallback).
    pub fn reconstruct_all(&self) -> Result<Vec<Vec<u8>>> {
        let shared = ExecShared::new(self);
        let mut ctx = ExecCtx::new(&shared);
        let all: Vec<u32> = (0..self.boxed.total_lines).collect();
        ctx.reconstruct(&all)
    }
}

/// The filter stage's output: which rows of each group the rest of the
/// pipeline (reconstruction or an aggregate sink) operates on.
///
/// `All` is not just shorthand for "every row of every group": it lets
/// metadata-only aggregates answer without enumerating rows at all.
#[derive(Debug, Clone)]
pub(crate) enum Selection {
    /// No filter: every stored line is selected.
    All,
    /// Matching rows per group (vector-local row numbers), one entry per
    /// group in group order.
    Rows(Vec<RowSet>),
}

/// Per-query state shared by every worker: the archive handle, the worker
/// pool, and the sharded decompressed-payload caches.
///
/// The caches use `Arc` payloads behind sharded mutexes, so any worker can
/// decompress or reuse any Capsule. A Capsule is decompressed **while its
/// shard is locked**: a concurrent worker asking for the same Capsule
/// blocks and reuses the result, so each Capsule is decompressed exactly
/// once per query and `capsules_decompressed` matches the serial count.
pub(crate) struct ExecShared<'a> {
    archive: &'a Archive,
    pool: Pool,
    payloads: Vec<Mutex<HashMap<u32, Arc<Vec<u8>>>>>,
    delim_ranges: Vec<CacheShard<Vec<(usize, usize)>>>,
}

/// One shard of a per-query Capsule-keyed cache.
type CacheShard<T> = Mutex<HashMap<u32, Arc<T>>>;

impl<'a> ExecShared<'a> {
    pub(crate) fn new(archive: &'a Archive) -> Self {
        Self {
            archive,
            pool: Pool::new(archive.threads),
            payloads: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            delim_ranges: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }
}

impl Drop for ExecShared<'_> {
    /// Returns the session's decompressed payload buffers to the archive's
    /// arena so the next query reuses their capacity instead of
    /// re-allocating megabytes of Vecs. Workers only hold payload `Arc`s
    /// transiently and are joined before the session ends, so each payload
    /// is unshared here; a still-shared one is simply freed.
    fn drop(&mut self) {
        for shard in &self.payloads {
            for (_, arc) in shard.lock().drain() {
                if let Ok(buf) = Arc::try_unwrap(arc) {
                    self.archive.return_buffer(buf);
                }
            }
        }
    }
}

/// Per-worker execution context: a handle on the shared state plus this
/// worker's own statistics, merged by the coordinator when the worker is
/// done. The coordinating (caller-side) context is just worker zero.
pub(crate) struct ExecCtx<'a> {
    shared: &'a ExecShared<'a>,
    pub(crate) archive: &'a Archive,
    pub(crate) stats: QueryStats,
}

impl<'a> ExecCtx<'a> {
    pub(crate) fn new(shared: &'a ExecShared<'a>) -> Self {
        Self {
            shared,
            archive: shared.archive,
            stats: QueryStats::default(),
        }
    }

    pub(crate) fn meta(&self, id: u32) -> Result<&'a CapsuleMeta> {
        self.archive
            .boxed
            .capsules
            .get(id as usize)
            .ok_or_else(|| Error::Corrupt(format!("capsule id {id} out of range")))
    }

    pub(crate) fn group(&self, gid: usize) -> Result<&'a crate::boxfile::GroupMeta> {
        self.archive
            .boxed
            .groups
            .get(gid)
            .ok_or_else(|| Error::Corrupt(format!("group {gid} out of range")))
    }

    /// Decompresses (and caches) one Capsule payload.
    pub(crate) fn payload(&mut self, id: u32) -> Result<Arc<Vec<u8>>> {
        // lint:allow(no-panic-in-decode) — index is reduced modulo the shard-vector length
        let shard = &self.shared.payloads[id as usize % CACHE_SHARDS];
        let mut shard = shard.lock();
        if let Some(p) = shard.get(&id) {
            return Ok(p.clone());
        }
        // Decompress under the shard lock: see [`ExecShared`]. The buffer
        // comes from (and on session drop returns to) the archive arena.
        let _span = telemetry::span("decompress");
        let mut bytes = self.archive.take_buffer();
        if let Err(e) = self.archive.boxed.decompress_capsule_into(id, &mut bytes) {
            self.archive.return_buffer(bytes);
            return Err(e);
        }
        self.stats.capsules_decompressed += 1;
        self.stats.bytes_decompressed += bytes.len() as u64;
        telemetry::counter!("query.capsules_decompressed", 1);
        telemetry::counter!("query.bytes_decompressed", bytes.len() as u64);
        let arc = Arc::new(bytes);
        shard.insert(id, arc.clone());
        Ok(arc)
    }

    /// Row byte-ranges of a delimited Capsule (cached).
    fn ranges(&mut self, id: u32) -> Result<Arc<Vec<(usize, usize)>>> {
        {
            // lint:allow(no-panic-in-decode) — index is reduced modulo the shard-vector length
            let shard = self.shared.delim_ranges[id as usize % CACHE_SHARDS].lock();
            if let Some(r) = shard.get(&id) {
                return Ok(r.clone());
            }
        }
        // Computed outside the shard lock (it needs the payload lock); a
        // concurrent duplicate computation is idempotent.
        let payload = self.payload(id)?;
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for (i, &b) in payload.iter().enumerate() {
            if b == b'\n' {
                ranges.push((start, i));
                start = i + 1;
            }
        }
        if start != payload.len() {
            return Err(Error::Corrupt("delimited capsule missing trailer".into()));
        }
        let arc = Arc::new(ranges);
        // lint:allow(no-panic-in-decode) — index is reduced modulo the shard-vector length
        self.shared.delim_ranges[id as usize % CACHE_SHARDS]
            .lock()
            .insert(id, arc.clone());
        Ok(arc)
    }

    /// The unpadded value of `row` in a Capsule, appended into `out`
    /// (cleared first) so render loops reuse one buffer per slot.
    fn capsule_value_into(&mut self, id: u32, row: u32, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        let meta = self.meta(id)?;
        let payload = self.payload(id)?;
        match meta.layout {
            Layout::Padded { width } => {
                let width = width as usize;
                if width == 0 || payload.len() % width != 0 {
                    return Err(Error::Corrupt("capsule payload misaligned".into()));
                }
                let f = FixedRows::new(&payload, width, PAD);
                if (row as usize) >= f.rows() {
                    return Err(Error::Corrupt("capsule row out of range".into()));
                }
                out.extend_from_slice(f.value(row as usize));
            }
            Layout::Delimited => {
                let ranges = self.ranges(id)?;
                let &(lo, hi) = ranges
                    .get(row as usize)
                    .ok_or_else(|| Error::Corrupt("capsule row out of range".into()))?;
                out.extend_from_slice(payload.get(lo..hi).ok_or_else(|| {
                    Error::Corrupt("capsule row range outside payload".into())
                })?);
            }
            Layout::Raw => return Err(Error::Corrupt("raw capsule has no row addressing".into())),
        }
        Ok(())
    }

    /// Rows of a Capsule whose values satisfy `(mode, needle)`.
    fn capsule_find(&mut self, id: u32, needle: &[u8], mode: Mode) -> Result<Vec<u32>> {
        let payload = self.payload(id)?;
        let _span = telemetry::span("search");
        let meta = self.meta(id)?;
        let view = crate::capsule::CapsuleView::new(&payload, meta)?;
        let hits = view.find(needle, mode);
        telemetry::counter!("query.capsule_scans", 1);
        Ok(hits)
    }

    /// Stamp pre-filter (§5.1): false means the requirement cannot match and
    /// the Capsule need not be decompressed.
    fn stamp_admits(&mut self, id: u32, needle: &[u8]) -> bool {
        if !self.archive.use_stamps {
            return true;
        }
        let _span = telemetry::span("stamp");
        telemetry::counter!("query.stamp_checks", 1);
        // A bad Capsule id keeps the filter fail-open; the subsequent
        // decompression reports the Corrupt error with context.
        let Ok(meta) = self.meta(id) else { return true };
        let ok = meta.stamp.admits(needle);
        if !ok {
            self.stats.stamp_rejections += 1;
            telemetry::counter!("query.stamp_rejections", 1);
        }
        ok
    }

    /// Counts one row materialized for wildcard/overflow verification.
    fn note_row_verified(&mut self) {
        self.stats.rows_verified += 1;
        telemetry::counter!("query.rows_verified", 1);
    }

    /// Runs the Capsule-locating planner (§5.1) under the `plan` span,
    /// accumulating its wall time into the per-query plan/execute split.
    fn plan_timed(&mut self, segs: &[SegRef<'_>], needle: &[u8], mode: Mode) -> Plan {
        let _span = telemetry::span("plan");
        let t = Instant::now();
        let p = plan(segs, needle, mode);
        self.stats.plan_elapsed += t.elapsed();
        p
    }

    // ------------------------------------------------------------------
    // Expression evaluation (global line-number sets).
    // ------------------------------------------------------------------

    /// Evaluates the whole expression to global line numbers.
    ///
    /// Internally everything is per-group: a line belongs to exactly one
    /// group, so `and`/`or`/`not` distribute over groups. That enables the
    /// progressive-matching optimization (as in CLP's keyword chaining): the
    /// right side of an `and`/`not` is only evaluated on groups where the
    /// left side still has candidate rows.
    fn eval_expr(&mut self, expr: &Expr) -> Result<RowSet> {
        let _span = telemetry::span("eval");
        let selection = self.filter_selection(Some(expr))?;
        self.selection_lines(&selection)
    }

    /// The filter stage of the pipeline: evaluates an optional filter
    /// expression into a [`Selection`]. `None` selects everything without
    /// touching any Capsule.
    pub(crate) fn filter_selection(&mut self, expr: Option<&Expr>) -> Result<Selection> {
        match expr {
            None => Ok(Selection::All),
            Some(expr) => {
                let ngroups = self.archive.boxed.groups.len();
                Ok(Selection::Rows(
                    self.eval_expr_groups(expr, &vec![false; ngroups])?,
                ))
            }
        }
    }

    /// Maps a [`Selection`] to global line numbers (the line-set sink of
    /// the pipeline).
    fn selection_lines(&self, selection: &Selection) -> Result<RowSet> {
        let per_group = match selection {
            Selection::All => return Ok(RowSet::all(self.archive.boxed.total_lines)),
            Selection::Rows(per_group) => per_group,
        };
        let mut global = Vec::new();
        for (rows, group) in per_group.iter().zip(&self.archive.boxed.groups) {
            for r in rows.iter() {
                let line = group.line_numbers.get(r as usize).copied().ok_or_else(|| {
                    Error::Corrupt("matched row outside group line table".into())
                })?;
                global.push(line);
            }
        }
        Ok(RowSet::from_unsorted(global))
    }

    fn eval_expr_groups(&mut self, expr: &Expr, skip: &[bool]) -> Result<Vec<RowSet>> {
        match expr {
            Expr::Str(s) => self.eval_str_over_groups(s, skip),
            Expr::And(a, b) => {
                let ra = self.eval_expr_groups(a, skip)?;
                let skip_b: Vec<bool> = ra
                    .iter()
                    .zip(skip)
                    .map(|(rows, &s)| s || rows.is_empty())
                    .collect();
                let rb = self.eval_expr_groups(b, &skip_b)?;
                Ok(ra
                    .iter()
                    .zip(&rb)
                    .map(|(x, y)| x.intersect(y))
                    .collect())
            }
            Expr::Or(a, b) => {
                let ra = self.eval_expr_groups(a, skip)?;
                let rb = self.eval_expr_groups(b, skip)?;
                Ok(ra.iter().zip(&rb).map(|(x, y)| x.union(y)).collect())
            }
            Expr::Not(a, b) => {
                let ra = self.eval_expr_groups(a, skip)?;
                let skip_b: Vec<bool> = ra
                    .iter()
                    .zip(skip)
                    .map(|(rows, &s)| s || rows.is_empty())
                    .collect();
                let rb = self.eval_expr_groups(b, &skip_b)?;
                Ok(ra.iter().zip(&rb).map(|(x, y)| x.subtract(y)).collect())
            }
        }
    }

    /// Evaluates one search string over every non-skipped group, serially.
    ///
    /// Fanning out across *groups* is never worth it: literal searches are
    /// sub-millisecond Capsule scans (cheaper than one thread spawn on the
    /// virtualized hosts this targets) and the expensive part of wildcard
    /// searches — per-row verification — fans out across row chunks inside
    /// [`ExecCtx::verify_rows`], which parallelizes within a group instead
    /// of being capped by the group count.
    fn eval_str_over_groups(&mut self, s: &SearchString, skip: &[bool]) -> Result<Vec<RowSet>> {
        let mut out = Vec::with_capacity(skip.len());
        for (gid, &skipped) in skip.iter().enumerate() {
            if skipped {
                out.push(RowSet::empty());
            } else {
                out.push(self.eval_search_in_group(s, gid)?);
            }
        }
        Ok(out)
    }

    fn eval_search_in_group(&mut self, s: &SearchString, gid: usize) -> Result<RowSet> {
        if let Some(lit) = s.as_literal() {
            return self.eval_literal_in_group(gid, lit);
        }
        // Wildcard string: locate candidates with the longest literal
        // fragment, then verify by reconstruction.
        let frag = s.longest_literal();
        let group_rows = self.group(gid)?.rows();
        let candidates = if frag.is_empty() {
            RowSet::all(group_rows)
        } else {
            self.eval_literal_in_group(gid, frag)?
        };
        let rows: Vec<u32> = candidates.iter().collect();
        self.verify_rows(gid, &rows, |line| s.matches_line(line, DEFAULT_DELIMS))
    }

    /// Renders each of `rows` (ascending) and keeps those passing `pred` —
    /// the verify-by-reconstruction step shared by wildcard searches and
    /// the planner's Overflow fallback.
    ///
    /// Large candidate sets are verified in parallel: contiguous row chunks
    /// go to pool workers (sharing the Capsule caches through
    /// [`ExecShared`]), and hits concatenate in chunk order, so the result
    /// and statistics match the serial loop exactly.
    fn verify_rows(
        &mut self,
        gid: usize,
        rows: &[u32],
        pred: impl Fn(&[u8]) -> bool + Sync,
    ) -> Result<RowSet> {
        let shared = self.shared;
        if shared.pool.threads() == 1 || rows.len() < PARALLEL_VERIFY_MIN_ROWS {
            let mut scratch = RenderScratch::default();
            let mut line = Vec::new();
            let mut hits = Vec::new();
            for &row in rows {
                self.render_row_into(gid, row, &mut scratch, &mut line)?;
                self.note_row_verified();
                if pred(&line) {
                    hits.push(row);
                }
            }
            return Ok(RowSet::from_sorted(hits));
        }
        let chunk = rows
            .len()
            .div_ceil(shared.pool.threads() * 4)
            .max(MIN_PARALLEL_CHUNK);
        let trace_id = telemetry::current_trace_id();
        // Workers re-root their span stacks at the caller's current path so
        // their spans aggregate under the same histograms as the serial
        // loop, whichever eval path fanned the verification out.
        let ctx_path = telemetry::span_path();
        let chunks = shared.pool.map_chunks(rows, chunk, |_, chunk_rows| {
            let _trace = telemetry::trace_scope_with(trace_id);
            let _ctx = ctx_path.as_deref().map(telemetry::context);
            let mut worker = ExecCtx::new(shared);
            let mut scratch = RenderScratch::default();
            let mut line = Vec::new();
            let mut hits = Vec::new();
            for &row in chunk_rows {
                worker.render_row_into(gid, row, &mut scratch, &mut line)?;
                worker.note_row_verified();
                if pred(&line) {
                    hits.push(row);
                }
            }
            Ok::<_, Error>((hits, worker.stats))
        });
        let mut out = Vec::new();
        for chunk_result in chunks {
            let (hits, worker_stats) = chunk_result?;
            self.stats.merge(&worker_stats);
            out.extend(hits);
        }
        Ok(RowSet::from_sorted(out))
    }

    /// Rows of a group whose rendered line contains the literal `kw`.
    fn eval_literal_in_group(&mut self, gid: usize, kw: &[u8]) -> Result<RowSet> {
        let _span = telemetry::span("literal");
        let group = self.group(gid)?;
        let nrows = group.rows();
        if nrows == 0 {
            return Ok(RowSet::empty());
        }
        let pieces = group.template.pieces();
        let segs: Vec<SegRef<'_>> = pieces
            .iter()
            .map(|p| match p {
                Piece::Static(s) => SegRef::Const(s.as_slice()),
                Piece::Slot(i) => SegRef::Var(*i),
            })
            .collect();
        match self.plan_timed(&segs, kw, Mode::Contains) {
            Plan::All => Ok(RowSet::all(nrows)),
            Plan::Overflow => self.brute_force_group(gid, |line| strsearch::contains(line, kw)),
            Plan::Conjs(conjs) => {
                if conjs.is_empty() {
                    self.stats.groups_skipped += 1;
                    telemetry::counter!("query.groups_skipped", 1);
                    return Ok(RowSet::empty());
                }
                let mut out = RowSet::empty();
                for conj in &conjs {
                    let rows = self.eval_conj_on_slots(gid, conj, kw, nrows)?;
                    out = out.union(&rows);
                }
                Ok(out)
            }
        }
    }

    /// Intersection of slot-requirements of one conjunction.
    fn eval_conj_on_slots(
        &mut self,
        gid: usize,
        conj: &Conj,
        kw: &[u8],
        nrows: u32,
    ) -> Result<RowSet> {
        let mut rows = RowSet::all(nrows);
        for req in conj {
            if rows.is_empty() {
                break;
            }
            let part = kw
                .get(req.lo..req.hi)
                .ok_or_else(|| Error::Corrupt("plan range outside keyword".into()))?;
            let hit = self.eval_var_req(gid, req.var, part, req.mode)?;
            rows = rows.intersect(&hit);
        }
        Ok(rows)
    }

    /// Group rows whose value of slot `slot` satisfies `(mode, needle)` —
    /// the per-variable-vector matching of §5.1, dispatching on storage form.
    fn eval_var_req(
        &mut self,
        gid: usize,
        slot: usize,
        needle: &[u8],
        mode: Mode,
    ) -> Result<RowSet> {
        // Borrow through the 'a archive reference, which outlives &mut self,
        // so no clone of the vector metadata is needed.
        let group = self.group(gid)?;
        let nrows = group.rows();
        let vector = group
            .vectors
            .get(slot)
            .ok_or_else(|| Error::Corrupt("template slot outside vector table".into()))?;
        match vector {
            VectorMeta::Plain { capsule } => {
                if !self.stamp_admits(*capsule, needle) {
                    return Ok(RowSet::empty());
                }
                Ok(RowSet::from_sorted(
                    self.capsule_find(*capsule, needle, mode)?,
                ))
            }
            VectorMeta::Real {
                pattern,
                sub_caps,
                outlier_cap,
                outlier_rows,
            } => {
                let mut out = self.eval_real_pattern(
                    gid,
                    slot,
                    pattern,
                    sub_caps,
                    outlier_rows,
                    nrows,
                    needle,
                    mode,
                )?;
                // The outlier Capsule is always scanned (§4.1). Its row
                // count is untrusted, so hits are mapped fallibly.
                if !outlier_rows.is_empty() {
                    let hits = self.capsule_find(*outlier_cap, needle, mode)?;
                    let mut mapped = Vec::with_capacity(hits.len());
                    for r in hits {
                        mapped.push(outlier_rows.get(r as usize).copied().ok_or_else(|| {
                            Error::Corrupt("outlier capsule row outside outlier table".into())
                        })?);
                    }
                    out = out.union(&RowSet::from_sorted(mapped));
                }
                Ok(out)
            }
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                idx_len,
                dict_len,
                ..
            } => self.eval_nominal(
                patterns, *dict_cap, *index_cap, *idx_len, *dict_len, needle, mode, nrows,
            ),
        }
    }

    /// The runtime-pattern path for a real vector.
    #[allow(clippy::too_many_arguments)]
    fn eval_real_pattern(
        &mut self,
        gid: usize,
        slot: usize,
        pattern: &RuntimePattern,
        sub_caps: &[u32],
        outlier_rows: &[u32],
        nrows: u32,
        needle: &[u8],
        mode: Mode,
    ) -> Result<RowSet> {
        let segs: Vec<SegRef<'_>> = pattern
            .segments
            .iter()
            .map(|s| match s {
                Segment::Const(c) => SegRef::Const(c.as_slice()),
                Segment::Var(v) => SegRef::Var(*v),
            })
            .collect();
        let pattern_rows = || VectorMeta::pattern_row_map(outlier_rows, nrows);
        match self.plan_timed(&segs, needle, mode) {
            Plan::All => Ok(RowSet::from_sorted(pattern_rows())),
            Plan::Overflow => {
                // Scan the variable vector by materializing values into
                // reused scratch buffers.
                let map = pattern_rows();
                let mut subs: Vec<Vec<u8>> = Vec::new();
                let mut value = Vec::new();
                let mut hits = Vec::new();
                for (pr, &row) in map.iter().enumerate() {
                    self.real_value_into(pattern, sub_caps, pr as u32, &mut subs, &mut value)?;
                    self.note_row_verified();
                    if value_matches(&value, needle, mode) {
                        hits.push(row);
                    }
                }
                let _ = (gid, slot);
                Ok(RowSet::from_sorted(hits))
            }
            Plan::Conjs(conjs) => {
                let map = pattern_rows();
                let total_pattern_rows = map.len() as u32;
                let mut out = RowSet::empty();
                for conj in &conjs {
                    let mut rows = RowSet::all(total_pattern_rows);
                    for req in conj {
                        if rows.is_empty() {
                            break;
                        }
                        let part = needle
                            .get(req.lo..req.hi)
                            .ok_or_else(|| Error::Corrupt("plan range outside keyword".into()))?;
                        let cap = sub_caps.get(req.var).copied().ok_or_else(|| {
                            Error::Corrupt("plan sub-variable outside capsule table".into())
                        })?;
                        if !self.stamp_admits(cap, part) {
                            rows = RowSet::empty();
                            break;
                        }
                        let hit = RowSet::from_sorted(self.capsule_find(cap, part, req.mode)?);
                        rows = rows.intersect(&hit);
                    }
                    out = out.union(&rows);
                }
                // Map pattern rows to vector rows.
                let mut vec_rows = Vec::new();
                for pr in out.iter() {
                    vec_rows.push(map.get(pr as usize).copied().ok_or_else(|| {
                        Error::Corrupt("pattern row outside row map".into())
                    })?);
                }
                Ok(RowSet::from_sorted(vec_rows))
            }
        }
    }

    /// The dictionary + index path for a nominal vector (§5.1 differences).
    #[allow(clippy::too_many_arguments)]
    fn eval_nominal(
        &mut self,
        patterns: &[DictPattern],
        dict_cap: u32,
        index_cap: u32,
        idx_len: u32,
        dict_len: u32,
        needle: &[u8],
        mode: Mode,
        nrows: u32,
    ) -> Result<RowSet> {
        let _span = telemetry::span("nominal");
        let regions = VectorMeta::dict_regions(patterns)?;
        let fixed = matches!(self.meta(dict_cap)?.layout, Layout::Raw);
        let mut matched: Vec<u32> = Vec::new();
        for (p, region) in patterns.iter().zip(&regions) {
            if needle.len() as u32 > p.max_len {
                continue;
            }
            if !self.dict_pattern_could_match(p, needle, mode) {
                continue;
            }
            // Jump straight to the region (Σ countᵢ×lenᵢ, §5.2) and scan it.
            let hits: Vec<u32> = if fixed {
                let payload = self.payload(dict_cap)?;
                let _span = telemetry::span("search");
                let bytes = region_bytes(&payload, region)?;
                let width = region.width as usize;
                FixedRows::new(bytes, width, PAD)
                    .find(needle, mode)
                    .into_iter()
                    .map(|r| r + region.first_index)
                    .collect()
            } else {
                let meta = self.meta(dict_cap)?;
                let payload = self.payload(dict_cap)?;
                let _span = telemetry::span("search");
                let view = crate::capsule::CapsuleView::new(&payload, meta)?;
                view.find_in_rows(
                    needle,
                    mode,
                    region.first_index,
                    // Validated at region construction not to overflow;
                    // saturate rather than trust the archive.
                    region.first_index.saturating_add(region.count),
                )
            };
            matched.extend(hits);
        }
        if matched.is_empty() {
            return Ok(RowSet::empty());
        }
        debug_assert!(matched.iter().all(|&i| i < dict_len));

        // Search the matched indices in the index Capsule.
        if matched.len() <= 8 {
            let mut out = RowSet::empty();
            for idx in &matched {
                let formatted = format_index(*idx, idx_len);
                let rows = self.capsule_find(index_cap, &formatted, Mode::Exact)?;
                out = out.union(&RowSet::from_sorted(rows));
            }
            Ok(out)
        } else {
            // One pass over the decompressed index Capsule with a membership
            // set (row addressing is O(1) thanks to the fixed width, §5.2).
            let set: HashSet<u32> = matched.into_iter().collect();
            let meta = self.meta(index_cap)?;
            let payload = self.payload(index_cap)?;
            let view = crate::capsule::CapsuleView::new(&payload, meta)?;
            let mut rows = Vec::new();
            for row in 0..nrows.min(view.rows() as u32) {
                let idx = parse_index(view.value(row as usize))
                    .ok_or_else(|| Error::Corrupt("bad index value".into()))?;
                if set.contains(&idx) {
                    rows.push(row);
                }
            }
            Ok(RowSet::from_sorted(rows))
        }
    }

    /// Could `(mode, needle)` match any value of this dictionary pattern?
    /// Pattern structure plus sub-variable stamps — no decompression.
    fn dict_pattern_could_match(&mut self, p: &DictPattern, needle: &[u8], mode: Mode) -> bool {
        let segs: Vec<SegRef<'_>> = p
            .pattern
            .segments
            .iter()
            .map(|s| match s {
                Segment::Const(c) => SegRef::Const(c.as_slice()),
                Segment::Var(v) => SegRef::Var(*v),
            })
            .collect();
        match self.plan_timed(&segs, needle, mode) {
            Plan::All | Plan::Overflow => true,
            Plan::Conjs(conjs) => {
                if !self.archive.use_stamps {
                    return !conjs.is_empty();
                }
                // Out-of-range plan references stay fail-open (true): the
                // filter may only skip a Capsule when the stamp proves a
                // non-match.
                let admits_all = |conj: &Conj| {
                    conj.iter().all(|req| {
                        p.pattern.sub_stamps.get(req.var).is_none_or(|s| {
                            needle.get(req.lo..req.hi).is_none_or(|part| s.admits(part))
                        })
                    })
                };
                if !conjs.is_empty() {
                    telemetry::counter!("query.stamp_checks", 1);
                }
                let ok = conjs.iter().any(admits_all);
                if !ok && !conjs.is_empty() {
                    self.stats.stamp_rejections += 1;
                    telemetry::counter!("query.stamp_rejections", 1);
                }
                ok
            }
        }
    }

    // ------------------------------------------------------------------
    // Value reconstruction.
    // ------------------------------------------------------------------

    /// The value of sub-variable capsules assembled through a pattern,
    /// rendered into `out` (cleared first). `subs` is the caller's reusable
    /// per-sub-variable scratch.
    fn real_value_into(
        &mut self,
        pattern: &RuntimePattern,
        sub_caps: &[u32],
        pattern_row: u32,
        subs: &mut Vec<Vec<u8>>,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if subs.len() < sub_caps.len() {
            subs.resize_with(sub_caps.len(), Vec::new);
        }
        for (sub, &cap) in subs.iter_mut().zip(sub_caps) {
            self.capsule_value_into(cap, pattern_row, sub)?;
        }
        pattern.render_into(subs.get(..sub_caps.len()).unwrap_or_default(), out);
        Ok(())
    }

    /// The value of slot `slot` on group row `row`, rendered into `out`
    /// (cleared first). `subs` is the caller's reusable sub-variable
    /// scratch for pattern-decomposed vectors.
    pub(crate) fn slot_value_into(
        &mut self,
        gid: usize,
        slot: usize,
        row: u32,
        subs: &mut Vec<Vec<u8>>,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let vector = self
            .group(gid)?
            .vectors
            .get(slot)
            .ok_or_else(|| Error::Corrupt("template slot outside vector table".into()))?;
        match vector {
            VectorMeta::Plain { capsule } => self.capsule_value_into(*capsule, row, out),
            VectorMeta::Real {
                pattern,
                sub_caps,
                outlier_cap,
                outlier_rows,
            } => match outlier_rows.binary_search(&row) {
                Ok(outlier_pos) => self.capsule_value_into(*outlier_cap, outlier_pos as u32, out),
                Err(outliers_before) => {
                    let pattern_row = row - outliers_before as u32;
                    self.real_value_into(pattern, sub_caps, pattern_row, subs, out)
                }
            },
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                ..
            } => {
                self.capsule_value_into(*index_cap, row, out)?;
                let idx =
                    parse_index(out).ok_or_else(|| Error::Corrupt("bad index value".into()))?;
                self.dict_value_into(patterns, *dict_cap, idx, out)
            }
        }
    }

    /// The dictionary value with global index `idx`, rendered into `out`
    /// (cleared first).
    pub(crate) fn dict_value_into(
        &mut self,
        patterns: &[DictPattern],
        dict_cap: u32,
        idx: u32,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        let fixed = matches!(self.meta(dict_cap)?.layout, Layout::Raw);
        if fixed {
            out.clear();
            let regions = VectorMeta::dict_regions(patterns)?;
            let region = regions
                .iter()
                .rev()
                .find(|r| r.first_index <= idx)
                .ok_or_else(|| Error::Corrupt("dict index out of range".into()))?;
            if idx - region.first_index >= region.count {
                return Err(Error::Corrupt("dict index out of range".into()));
            }
            let payload = self.payload(dict_cap)?;
            let bytes = region_bytes(&payload, region)?;
            let width = region.width as usize;
            let rows = FixedRows::new(bytes, width, PAD);
            let local = (idx - region.first_index) as usize;
            if local >= rows.rows() && width > 0 {
                return Err(Error::Corrupt("dict index outside region".into()));
            }
            if width == 0 {
                // A zero-width region stores only empty values.
                return Ok(());
            }
            out.extend_from_slice(rows.value(local));
            Ok(())
        } else {
            self.capsule_value_into(dict_cap, idx, out)
        }
    }

    /// Renders the full original line of group row `row` into `line`
    /// (cleared first), materializing each slot value into the scratch's
    /// reused buffers — only this row's column values are ever touched.
    fn render_row_into(
        &mut self,
        gid: usize,
        row: u32,
        scratch: &mut RenderScratch,
        line: &mut Vec<u8>,
    ) -> Result<()> {
        let group = self.group(gid)?;
        let slots = group.vectors.len();
        if scratch.values.len() < slots {
            scratch.values.resize_with(slots, Vec::new);
        }
        let RenderScratch { values, subs } = scratch;
        for (slot, value) in values.iter_mut().take(slots).enumerate() {
            self.slot_value_into(gid, slot, row, subs, value)?;
        }
        group
            .template
            .render_into(values.get(..slots).unwrap_or_default(), line);
        Ok(())
    }

    /// Reconstructs every row of a group and keeps those passing `pred`.
    fn brute_force_group(
        &mut self,
        gid: usize,
        pred: impl Fn(&[u8]) -> bool + Sync,
    ) -> Result<RowSet> {
        let nrows = self.group(gid)?.rows();
        let rows: Vec<u32> = (0..nrows).collect();
        self.verify_rows(gid, &rows, pred)
    }

    /// Renders one line number through the line index into `line`.
    fn render_line_into(
        &mut self,
        index: &[(u32, u32)],
        lineno: u32,
        scratch: &mut RenderScratch,
        line: &mut Vec<u8>,
    ) -> Result<()> {
        let &(gid, row) = index
            .get(lineno as usize)
            .ok_or_else(|| Error::Corrupt("line number out of range".into()))?;
        if gid == u32::MAX {
            return Err(Error::Corrupt("line number missing from groups".into()));
        }
        self.render_row_into(gid as usize, row, scratch, line)
    }

    /// Reconstructs the given global line numbers, in ascending line order.
    ///
    /// Groups hold their rows in original order, so entries of one group are
    /// naturally ordered; across groups the stored line numbers (logical
    /// timestamps) restore the global order, as in §3's Reconstruction.
    ///
    /// Large result sets are rendered in parallel: the sorted line list is
    /// split into contiguous chunks, each chunk rendered by a pool worker
    /// (sharing the Capsule caches), and the chunks concatenated in order —
    /// output and statistics match the serial loop exactly.
    fn reconstruct(&mut self, line_numbers: &[u32]) -> Result<Vec<Vec<u8>>> {
        let shared = self.shared;
        let wanted = RowSet::from_unsorted(line_numbers.to_vec());
        let index = self.archive.line_index();
        let lines: Vec<u32> = wanted.iter().collect();
        if shared.pool.threads() == 1 || lines.len() < PARALLEL_RECONSTRUCT_MIN_LINES {
            let mut scratch = RenderScratch::default();
            let mut line = Vec::new();
            let mut out = Vec::with_capacity(lines.len());
            for &lineno in &lines {
                self.render_line_into(index, lineno, &mut scratch, &mut line)?;
                out.push(line.clone());
            }
            return Ok(out);
        }
        let chunk = lines
            .len()
            .div_ceil(shared.pool.threads() * 4)
            .max(MIN_PARALLEL_CHUNK);
        let trace_id = telemetry::current_trace_id();
        let chunks = shared.pool.map_chunks(&lines, chunk, |_, chunk_lines| {
            let _trace = telemetry::trace_scope_with(trace_id);
            let _ctx = telemetry::context("query/reconstruct");
            let mut worker = ExecCtx::new(shared);
            let mut scratch = RenderScratch::default();
            let mut line = Vec::new();
            let mut rendered = Vec::with_capacity(chunk_lines.len());
            for &lineno in chunk_lines {
                worker.render_line_into(index, lineno, &mut scratch, &mut line)?;
                rendered.push(line.clone());
            }
            Ok::<_, Error>((rendered, worker.stats))
        });
        let mut out = Vec::with_capacity(lines.len());
        for chunk_result in chunks {
            let (rendered, worker_stats) = chunk_result?;
            self.stats.merge(&worker_stats);
            out.extend(rendered);
        }
        Ok(out)
    }
}

/// Reusable buffers for one render loop: per-slot value buffers plus
/// sub-variable buffers, so rendering a row allocates nothing once they are
/// warm — the row-level counterpart of the archive's payload arena. Each
/// worker owns one; buffers grow to the widest row seen and stay there for
/// the rest of the loop.
#[derive(Default)]
struct RenderScratch {
    /// One value buffer per template slot.
    values: Vec<Vec<u8>>,
    /// One buffer per runtime-pattern sub-variable.
    subs: Vec<Vec<u8>>,
}

/// Slices a dictionary region out of a decompressed payload, rejecting
/// regions whose declared extent overflows or exceeds the payload.
fn region_bytes<'p>(payload: &'p [u8], region: &crate::vector::DictRegion) -> Result<&'p [u8]> {
    let span = usize::try_from(u64::from(region.count) * u64::from(region.width))
        .map_err(|_| Error::Corrupt("dict region overflow".into()))?;
    let end = region
        .byte_offset
        .checked_add(span)
        .ok_or_else(|| Error::Corrupt("dict region overflow".into()))?;
    payload
        .get(region.byte_offset..end)
        .ok_or_else(|| Error::Corrupt("dict region outside payload".into()))
}

/// Direct value/needle check shared by scan fallbacks.
fn value_matches(value: &[u8], needle: &[u8], mode: Mode) -> bool {
    match mode {
        Mode::Contains => strsearch::contains(value, needle),
        Mode::Prefix => value.starts_with(needle),
        Mode::Suffix => value.ends_with(needle),
        Mode::Exact => value == needle,
    }
}
