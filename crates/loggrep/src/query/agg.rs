//! Aggregate execution on compressed capsules: the aggregate sink of the
//! query pipeline (filter → project → aggregate).
//!
//! The filter stage produces a [`Selection`] (per-group row sets, or "all
//! rows"); the sink then pushes each [`AggSpec`] verb down to the cheapest
//! storage layer that can answer it:
//!
//! * `count`, `count-by-template`, `histogram` read only group metadata
//!   (row sets and line-number tables) — **zero Capsules decompressed**;
//! * unfiltered `top-K` over a nominal vector reads its per-value counts
//!   from metadata, rendering values from constant-only dictionary
//!   patterns (still zero decompressions) or from the dictionary Capsule
//!   (at most one decompression; the index Capsule stays untouched);
//! * filtered `top-K` over a nominal vector scans the index Capsule for
//!   the selected rows only;
//! * `top-K` over plain/real vectors falls back to lazy, arena-backed
//!   per-row value reconstruction — never full line rendering.
//!
//! The most expensive layer actually used is recorded in
//! [`QueryStats::agg_layer`] (and per-layer telemetry counters), which the
//! aggregate PlanDrift report checks against the planner's prediction.

use crate::boxfile::Archive;
use crate::capsule::CapsuleView;
use crate::error::{Error, Result};
use crate::extract::nominal::parse_index;
use crate::query::exec::{ExecCtx, ExecShared, Selection};
use crate::query::lang::{AggSpec, Query};
use crate::query::plan::AggTargetKind;
use crate::stats::{AggLayer, QueryStats};
use crate::vector::VectorMeta;
use std::collections::HashMap;
use std::time::Instant;

/// The result of one aggregate query (canonically ordered, so equal
/// answers are structurally equal across engine configs and thread
/// counts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggResult {
    /// `count`: matching lines.
    Count(u64),
    /// `count-by-template`: `(template text, matching lines)`, count
    /// descending then template text ascending; zero-count templates are
    /// omitted.
    CountByTemplate(Vec<(String, u64)>),
    /// `top-K`: the **full** value distribution of the target slot
    /// (count descending then value ascending). Keeping every value makes
    /// cross-block merging exact; display truncates to `k`.
    TopK {
        /// How many values to display.
        k: usize,
        /// `(value bytes, occurrences)` over the selected rows.
        values: Vec<(Vec<u8>, u64)>,
    },
    /// `histogram B`: `(bucket start line, matching lines)` ascending;
    /// empty buckets are omitted.
    Histogram {
        /// Bucket width in lines.
        bucket: u64,
        /// Non-empty buckets, keyed by their first (global) line number.
        buckets: Vec<(u64, u64)>,
    },
}

impl AggResult {
    /// The empty result for `spec` (what an empty archive answers).
    pub fn empty(spec: &AggSpec) -> Self {
        match spec {
            AggSpec::Count => AggResult::Count(0),
            AggSpec::CountByTemplate => AggResult::CountByTemplate(Vec::new()),
            AggSpec::TopK { k, .. } => AggResult::TopK {
                k: *k,
                values: Vec::new(),
            },
            AggSpec::Histogram { bucket } => AggResult::Histogram {
                bucket: *bucket,
                buckets: Vec::new(),
            },
        }
    }

    /// Folds another block's result of the **same spec** into this one
    /// (counts add up; distributions merge by key and re-sort).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadQuery`] when the two results answer different
    /// aggregate kinds (an API misuse, not a data error).
    pub fn merge(&mut self, other: &AggResult) -> Result<()> {
        match (self, other) {
            (AggResult::Count(a), AggResult::Count(b)) => {
                *a += b;
                Ok(())
            }
            (AggResult::CountByTemplate(a), AggResult::CountByTemplate(b)) => {
                let mut map: HashMap<String, u64> = a.drain(..).collect();
                for (t, c) in b {
                    *map.entry(t.clone()).or_insert(0) += c;
                }
                *a = map.into_iter().collect();
                sort_counts_str(a);
                Ok(())
            }
            (
                AggResult::TopK { values: a, .. },
                AggResult::TopK { values: b, .. },
            ) => {
                let mut map: HashMap<Vec<u8>, u64> = a.drain(..).collect();
                for (v, c) in b {
                    *map.entry(v.clone()).or_insert(0) += c;
                }
                *a = map.into_iter().collect();
                sort_counts_bytes(a);
                Ok(())
            }
            (
                AggResult::Histogram { bucket, buckets: a },
                AggResult::Histogram {
                    bucket: ob,
                    buckets: b,
                },
            ) => {
                if *bucket != *ob {
                    return Err(Error::BadQuery("histogram bucket widths differ".into()));
                }
                let mut map: HashMap<u64, u64> = a.drain(..).collect();
                for (s, c) in b {
                    *map.entry(*s).or_insert(0) += c;
                }
                *a = map.into_iter().collect();
                a.sort_unstable();
                Ok(())
            }
            _ => Err(Error::BadQuery("aggregate kinds differ".into())),
        }
    }

    /// Renders the result as a JSON object (the CLI `--json` body).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let push_str = telemetry::export::push_json_string;
        match self {
            AggResult::Count(n) => out.push_str(&format!("{{\"count\": {n}}}")),
            AggResult::CountByTemplate(groups) => {
                out.push_str("{\"templates\": [");
                for (i, (t, c)) in groups.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"template\": ");
                    push_str(&mut out, t);
                    out.push_str(&format!(", \"count\": {c}}}"));
                }
                out.push_str("]}");
            }
            AggResult::TopK { k, values } => {
                out.push_str(&format!("{{\"k\": {k}, \"values\": ["));
                for (i, (v, c)) in values.iter().take(*k).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"value\": ");
                    push_str(&mut out, &String::from_utf8_lossy(v));
                    out.push_str(&format!(", \"count\": {c}}}"));
                }
                out.push_str(&format!("], \"distinct\": {}}}", values.len()));
            }
            AggResult::Histogram { bucket, buckets } => {
                out.push_str(&format!("{{\"bucket\": {bucket}, \"buckets\": ["));
                for (i, (s, c)) in buckets.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"start\": {s}, \"count\": {c}}}"));
                }
                out.push_str("]}");
            }
        }
        out
    }
}

impl std::fmt::Display for AggResult {
    /// Human form: one line per entry, count first (like `uniq -c`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggResult::Count(n) => writeln!(f, "{n}"),
            AggResult::CountByTemplate(groups) => {
                for (t, c) in groups {
                    writeln!(f, "{c:>8}  {t}")?;
                }
                Ok(())
            }
            AggResult::TopK { k, values } => {
                for (v, c) in values.iter().take(*k) {
                    writeln!(f, "{c:>8}  {}", String::from_utf8_lossy(v))?;
                }
                Ok(())
            }
            AggResult::Histogram { bucket, buckets } => {
                for (s, c) in buckets {
                    writeln!(f, "{c:>8}  [{s}, {})", s.saturating_add(*bucket))?;
                }
                Ok(())
            }
        }
    }
}

/// Count descending, then key ascending — the canonical order shared by
/// every engine config so results compare bytewise.
fn sort_counts_str(v: &mut [(String, u64)]) {
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

/// See [`sort_counts_str`].
fn sort_counts_bytes(v: &mut [(Vec<u8>, u64)]) {
    v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
}

/// The result of [`Archive::query_agg`]: the aggregate plus stats.
#[derive(Debug, Clone)]
pub struct AggQueryResult {
    /// The aggregate answer.
    pub agg: AggResult,
    /// Execution statistics ([`QueryStats::agg_layer`] records the most
    /// expensive layer that contributed).
    pub stats: QueryStats,
}

/// The aggregate cache key: distinct from (and structurally incapable of
/// colliding with) line-query keys — see `QueryCache`.
pub(crate) fn agg_cache_key(line_offset: u64, spec: &AggSpec, filter: Option<&str>) -> String {
    format!("{line_offset}|{}|{}", spec.render(), filter.unwrap_or(""))
}

impl Archive {
    /// Executes an aggregate query: `filter` (same language as
    /// [`Archive::query`]) restricts the lines, `spec` says what to
    /// compute over them. Pure metadata verbs never decompress a Capsule;
    /// see the module docs for the pushdown rules.
    pub fn query_agg(&self, filter: Option<&str>, spec: &AggSpec) -> Result<AggQueryResult> {
        self.query_agg_at(filter, spec, 0)
    }

    /// [`Archive::query_agg`] with this block's global line offset, so
    /// histogram buckets land on global line numbers when several blocks
    /// merge into one answer.
    pub fn query_agg_at(
        &self,
        filter: Option<&str>,
        spec: &AggSpec,
        line_offset: u64,
    ) -> Result<AggQueryResult> {
        let query = filter.map(Query::parse).transpose()?;
        let start = Instant::now();
        let _trace = telemetry::trace_scope();
        let _query_span = telemetry::span("query");
        telemetry::counter!("query.agg.executed", 1);
        let shared = {
            let _span = telemetry::span("setup");
            ExecShared::new(self)
        };
        let mut ctx = ExecCtx::new(&shared);
        ctx.stats.capsules_total = self.boxed.capsules.len() as u32;

        let key = agg_cache_key(line_offset, spec, filter);
        let agg = if self.use_query_cache {
            match self.cache.get_agg(&key) {
                Some(cached) => {
                    ctx.stats.cache_hit = true;
                    telemetry::counter!("query.cache.hits", 1);
                    cached
                }
                None => {
                    telemetry::counter!("query.cache.misses", 1);
                    let agg = ctx.run_agg(query.as_ref(), spec, line_offset)?;
                    self.cache.put_agg(&key, agg.clone());
                    agg
                }
            }
        } else {
            ctx.run_agg(query.as_ref(), spec, line_offset)?
        };

        let mut stats = std::mem::take(&mut ctx.stats);
        {
            let _span = telemetry::span("teardown");
            drop(shared);
        }
        stats.elapsed = start.elapsed();
        Ok(AggQueryResult { agg, stats })
    }

    /// What the aggregate planner knows about a `top-K` target: used both
    /// for the pushdown prediction (`explain_agg`) and its drift check.
    pub(crate) fn agg_target_kind(&self, template: usize, slot: usize) -> AggTargetKind {
        match self
            .boxed
            .groups
            .get(template)
            .and_then(|g| g.vectors.get(slot))
        {
            None => AggTargetKind::Missing,
            Some(VectorMeta::Plain { .. }) => AggTargetKind::Plain,
            Some(VectorMeta::Real { .. }) => AggTargetKind::Real,
            Some(VectorMeta::Nominal { patterns, .. }) => {
                if patterns.iter().all(|p| p.pattern.sub_vars() == 0) {
                    AggTargetKind::NominalConst
                } else {
                    AggTargetKind::NominalMixed
                }
            }
        }
    }
}

impl ExecCtx<'_> {
    /// The full aggregate pipeline: filter → aggregate sink.
    fn run_agg(
        &mut self,
        query: Option<&Query>,
        spec: &AggSpec,
        line_offset: u64,
    ) -> Result<AggResult> {
        let selection = {
            let _span = telemetry::span("eval");
            self.filter_selection(query.map(|q| &q.expr))?
        };
        let _span = telemetry::span("aggregate");
        self.eval_agg(spec, &selection, line_offset)
    }

    /// Records that `layer` contributed to the aggregate answer.
    fn note_layer(&mut self, layer: AggLayer) {
        self.stats.note_agg_layer(layer);
        match layer {
            AggLayer::Metadata => telemetry::counter!("query.agg.layer.metadata", 1),
            AggLayer::Dictionary => telemetry::counter!("query.agg.layer.dictionary", 1),
            AggLayer::CapsuleScan => telemetry::counter!("query.agg.layer.capsule-scan", 1),
            AggLayer::Reconstruct => telemetry::counter!("query.agg.layer.reconstruct", 1),
        }
    }

    /// The aggregate sink: dispatches `spec` over `selection` at the
    /// cheapest layer (see the module docs for the rules).
    fn eval_agg(
        &mut self,
        spec: &AggSpec,
        selection: &Selection,
        line_offset: u64,
    ) -> Result<AggResult> {
        // Every verb at least reads group metadata.
        self.note_layer(AggLayer::Metadata);
        match spec {
            AggSpec::Count => {
                let n = match selection {
                    Selection::All => u64::from(self.archive.boxed.total_lines),
                    Selection::Rows(sets) => sets.iter().map(|s| s.len() as u64).sum(),
                };
                Ok(AggResult::Count(n))
            }
            AggSpec::CountByTemplate => {
                let mut map: HashMap<String, u64> = HashMap::new();
                for (gid, group) in self.archive.boxed.groups.iter().enumerate() {
                    let c = match selection {
                        Selection::All => u64::from(group.rows()),
                        Selection::Rows(sets) => {
                            sets.get(gid).map_or(0, |s| s.len() as u64)
                        }
                    };
                    if c > 0 {
                        *map.entry(group.template.display()).or_insert(0) += c;
                    }
                }
                let mut out: Vec<(String, u64)> = map.into_iter().collect();
                sort_counts_str(&mut out);
                Ok(AggResult::CountByTemplate(out))
            }
            AggSpec::Histogram { bucket } => {
                let mut map: HashMap<u64, u64> = HashMap::new();
                let mut bump = |line: u32| {
                    let global = line_offset + u64::from(line);
                    let start = (global / bucket) * bucket;
                    *map.entry(start).or_insert(0) += 1;
                };
                for (gid, group) in self.archive.boxed.groups.iter().enumerate() {
                    match selection {
                        Selection::All => group.line_numbers.iter().copied().for_each(&mut bump),
                        Selection::Rows(sets) => {
                            for r in sets.get(gid).map(|s| s.iter()).into_iter().flatten() {
                                let line = group
                                    .line_numbers
                                    .get(r as usize)
                                    .copied()
                                    .ok_or_else(|| {
                                        Error::Corrupt(
                                            "selected row outside group line table".into(),
                                        )
                                    })?;
                                bump(line);
                            }
                        }
                    }
                }
                let mut buckets: Vec<(u64, u64)> = map.into_iter().collect();
                buckets.sort_unstable();
                Ok(AggResult::Histogram {
                    bucket: *bucket,
                    buckets,
                })
            }
            AggSpec::TopK { k, template, slot } => {
                self.eval_top_k(*k, *template, *slot, selection)
            }
        }
    }

    /// The `top-K` sink: value frequencies of one template slot over the
    /// selected rows, at the cheapest layer the vector's storage form
    /// allows.
    fn eval_top_k(
        &mut self,
        k: usize,
        template: usize,
        slot: usize,
        selection: &Selection,
    ) -> Result<AggResult> {
        let empty = AggResult::TopK {
            k,
            values: Vec::new(),
        };
        // A missing target is an empty distribution, not an error: other
        // blocks of the same stream may well have the template.
        let Some(group) = self.archive.boxed.groups.get(template) else {
            return Ok(empty);
        };
        let Some(vector) = group.vectors.get(slot) else {
            return Ok(empty);
        };
        let selected: Option<Vec<u32>> = match selection {
            Selection::All => None,
            Selection::Rows(sets) => Some(
                sets.get(template)
                    .map(|s| s.iter().collect())
                    .unwrap_or_default(),
            ),
        };
        if selected.as_ref().is_some_and(Vec::is_empty) {
            return Ok(empty);
        }

        let mut values: Vec<(Vec<u8>, u64)> = match vector {
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                idx_len: _,
                dict_len,
                value_counts,
            } => {
                // Per-dictionary-value occurrence counts: from metadata
                // when unfiltered, else one scan of the index Capsule
                // restricted to the selected rows.
                let counts: Vec<u64> = match &selected {
                    None => value_counts.iter().copied().map(u64::from).collect(),
                    Some(rows) => {
                        self.note_layer(AggLayer::CapsuleScan);
                        let meta = self.meta(*index_cap)?;
                        let payload = self.payload(*index_cap)?;
                        let view = CapsuleView::new(&payload, meta)?;
                        let mut counts = vec![0u64; *dict_len as usize];
                        for &row in rows {
                            if row as usize >= view.rows() {
                                return Err(Error::Corrupt(
                                    "selected row outside index capsule".into(),
                                ));
                            }
                            let idx = parse_index(view.value(row as usize))
                                .ok_or_else(|| Error::Corrupt("bad index value".into()))?;
                            *counts.get_mut(idx as usize).ok_or_else(|| {
                                Error::Corrupt("dict index out of range".into())
                            })? += 1;
                        }
                        counts
                    }
                };
                // Values: dictionary entries are deduplicated, so a
                // constant-only pattern holds exactly one value — rendered
                // from metadata. Variable-bearing patterns read the
                // dictionary Capsule (never the index Capsule).
                let regions = VectorMeta::dict_regions(patterns)?;
                let mut out = Vec::new();
                for (p, region) in patterns.iter().zip(&regions) {
                    let const_only = p.pattern.sub_vars() == 0;
                    for local in 0..region.count {
                        let idx = region.first_index + local;
                        let c = counts.get(idx as usize).copied().ok_or_else(|| {
                            Error::Corrupt("value counts shorter than dictionary".into())
                        })?;
                        if c == 0 {
                            continue;
                        }
                        let mut value = Vec::new();
                        if const_only {
                            p.pattern.render_into(&[] as &[&[u8]], &mut value);
                        } else {
                            self.note_layer(AggLayer::Dictionary);
                            self.dict_value_into(patterns, *dict_cap, idx, &mut value)?;
                        }
                        out.push((value, c));
                    }
                }
                out
            }
            VectorMeta::Plain { .. } | VectorMeta::Real { .. } => {
                // Value-typed vectors: lazily materialize this slot's
                // value per selected row (never the whole line).
                self.note_layer(AggLayer::Reconstruct);
                let mut map: HashMap<Vec<u8>, u64> = HashMap::new();
                let mut subs: Vec<Vec<u8>> = Vec::new();
                let mut value = Vec::new();
                let rows: Vec<u32> = match &selected {
                    None => (0..group.rows()).collect(),
                    Some(rows) => rows.clone(),
                };
                for row in rows {
                    self.slot_value_into(template, slot, row, &mut subs, &mut value)?;
                    *map.entry(value.clone()).or_insert(0) += 1;
                }
                map.into_iter().collect()
            }
        };
        sort_counts_bytes(&mut values);
        Ok(AggResult::TopK { k, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tk(values: &[(&str, u64)]) -> AggResult {
        AggResult::TopK {
            k: 2,
            values: values
                .iter()
                .map(|(v, c)| (v.as_bytes().to_vec(), *c))
                .collect(),
        }
    }

    #[test]
    fn merge_adds_counts_and_resorts() {
        let mut a = AggResult::Count(3);
        a.merge(&AggResult::Count(4)).unwrap();
        assert_eq!(a, AggResult::Count(7));

        let mut a = AggResult::CountByTemplate(vec![
            ("x <*>".into(), 5),
            ("y <*>".into(), 2),
        ]);
        a.merge(&AggResult::CountByTemplate(vec![
            ("y <*>".into(), 9),
            ("z".into(), 5),
        ]))
        .unwrap();
        assert_eq!(
            a,
            AggResult::CountByTemplate(vec![
                ("y <*>".into(), 11),
                ("x <*>".into(), 5),
                ("z".into(), 5),
            ])
        );

        // The FULL distribution merges (not the displayed top-k), so the
        // merged ranking is exact even when a value is outside each
        // block's own top-k.
        let mut a = tk(&[("a", 5), ("b", 4), ("c", 3)]);
        a.merge(&tk(&[("c", 4), ("d", 1)])).unwrap();
        assert_eq!(a, tk(&[("c", 7), ("a", 5), ("b", 4), ("d", 1)]));

        let mut a = AggResult::Histogram {
            bucket: 10,
            buckets: vec![(0, 3), (10, 1)],
        };
        a.merge(&AggResult::Histogram {
            bucket: 10,
            buckets: vec![(10, 2), (20, 4)],
        })
        .unwrap();
        assert_eq!(
            a,
            AggResult::Histogram {
                bucket: 10,
                buckets: vec![(0, 3), (10, 3), (20, 4)],
            }
        );
    }

    #[test]
    fn merge_rejects_mismatched_kinds() {
        let mut a = AggResult::Count(1);
        assert!(a.merge(&AggResult::CountByTemplate(vec![])).is_err());
        let mut h = AggResult::Histogram {
            bucket: 10,
            buckets: vec![],
        };
        assert!(h
            .merge(&AggResult::Histogram {
                bucket: 20,
                buckets: vec![]
            })
            .is_err());
    }

    #[test]
    fn ties_break_on_value_ascending() {
        let mut a = tk(&[]);
        a.merge(&tk(&[("b", 2), ("a", 2), ("c", 2)])).unwrap();
        assert_eq!(a, tk(&[("a", 2), ("b", 2), ("c", 2)]));
    }

    #[test]
    fn json_truncates_to_k_and_escapes() {
        let r = AggResult::TopK {
            k: 1,
            values: vec![(b"a\"b".to_vec(), 3), (b"x".to_vec(), 1)],
        };
        let json = r.to_json();
        assert!(json.contains("\"k\": 1"));
        assert!(json.contains("a\\\"b"));
        assert!(!json.contains("\"x\""), "{json}");
        assert!(json.contains("\"distinct\": 2"));
        assert_eq!(AggResult::Count(5).to_json(), "{\"count\": 5}");
    }

    #[test]
    fn display_truncates_to_k() {
        let r = tk(&[("a", 5), ("b", 4), ("c", 3)]);
        let text = r.to_string();
        assert!(text.contains("a") && text.contains("b"));
        assert!(!text.contains("c"), "{text}");
    }

    #[test]
    fn cache_keys_separate_offset_spec_and_filter() {
        let spec = AggSpec::Count;
        let a = agg_cache_key(0, &spec, None);
        let b = agg_cache_key(0, &spec, Some("x"));
        let c = agg_cache_key(1, &spec, None);
        let d = agg_cache_key(0, &AggSpec::CountByTemplate, None);
        let all = [&a, &b, &c, &d];
        for (i, x) in all.iter().enumerate() {
            for (j, y) in all.iter().enumerate() {
                assert_eq!(i == j, x == y, "{x} vs {y}");
            }
        }
    }
}
