//! Refining-mode query sessions (§3, §6.3).
//!
//! LogGrep works in two modes: *direct mode* runs one complete command
//! ([`crate::Archive::query`]); in *refining mode* an engineer builds the
//! command up gradually. [`RefiningSession`] models the latter: each step
//! extends the command with one more search string, and because the archive
//! caches per-command results, re-evaluated prefixes cost nothing.

use crate::boxfile::Archive;
use crate::error::Result;
use crate::query::exec::QueryResult;

/// An incremental query session over one archive.
///
/// # Examples
///
/// ```
/// use loggrep::{LogGrep, LogGrepConfig};
/// use loggrep::query::session::RefiningSession;
///
/// let engine = LogGrep::new(LogGrepConfig::default());
/// let archive = engine
///     .compress_to_archive(b"a ERROR x\nb INFO y\nc ERROR y\n")
///     .unwrap();
/// let mut session = RefiningSession::new(&archive);
/// let broad = session.seed("ERROR").unwrap();
/// assert_eq!(broad.lines.len(), 2);
/// let narrow = session.and("y").unwrap();
/// assert_eq!(narrow.lines.len(), 1);
/// assert_eq!(session.command(), "ERROR and y");
/// ```
#[derive(Debug)]
pub struct RefiningSession<'a> {
    archive: &'a Archive,
    command: String,
    steps: Vec<String>,
}

impl<'a> RefiningSession<'a> {
    /// Starts an empty session.
    pub fn new(archive: &'a Archive) -> Self {
        Self {
            archive,
            command: String::new(),
            steps: Vec::new(),
        }
    }

    /// Sets (or resets) the initial search string and runs it.
    pub fn seed(&mut self, search: &str) -> Result<QueryResult> {
        self.command = search.to_string();
        self.steps = vec![self.command.clone()];
        self.archive.query(&self.command)
    }

    /// Narrows with `and <search>` and runs the refined command.
    pub fn and(&mut self, search: &str) -> Result<QueryResult> {
        self.extend("and", search)
    }

    /// Widens with `or <search>` and runs the refined command.
    pub fn or(&mut self, search: &str) -> Result<QueryResult> {
        self.extend("or", search)
    }

    /// Excludes with `not <search>` and runs the refined command.
    pub fn not(&mut self, search: &str) -> Result<QueryResult> {
        self.extend("not", search)
    }

    fn extend(&mut self, op: &str, search: &str) -> Result<QueryResult> {
        if self.command.is_empty() {
            return self.seed(search);
        }
        self.command = format!("{} {op} {search}", self.command);
        self.steps.push(self.command.clone());
        self.archive.query(&self.command)
    }

    /// Steps back to the previous command (no-op at the start). Returns the
    /// command now in effect.
    pub fn undo(&mut self) -> &str {
        self.steps.pop();
        match self.steps.last() {
            Some(prev) => self.command = prev.clone(),
            None => self.command.clear(),
        }
        &self.command
    }

    /// The current complete command.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Every command issued so far, oldest first.
    pub fn history(&self) -> &[String] {
        &self.steps
    }

    /// Re-runs the current command (a cache hit unless the cache is off).
    pub fn rerun(&self) -> Result<QueryResult> {
        self.archive.query(&self.command)
    }

    /// Runs an aggregate over the lines the current command selects (the
    /// whole archive when the session is empty) — "how many, of what
    /// shape" checks mid-refinement, without reconstructing any line.
    pub fn agg(&self, spec: &crate::query::lang::AggSpec) -> Result<crate::query::agg::AggQueryResult> {
        let filter = (!self.command.is_empty()).then_some(self.command.as_str());
        self.archive.query_agg(filter, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogGrep, LogGrepConfig};

    fn archive() -> Archive {
        let raw = b"\
2021 ERROR disk sda failed\n\
2021 INFO disk sdb ok\n\
2021 ERROR net eth0 flap\n\
2021 ERROR disk sdc failed\n\
2021 WARN disk sda slow\n";
        LogGrep::new(LogGrepConfig::default())
            .compress_to_archive(raw)
            .unwrap()
    }

    #[test]
    fn narrowing_session() {
        let archive = archive();
        let mut s = RefiningSession::new(&archive);
        assert_eq!(s.seed("ERROR").unwrap().lines.len(), 3);
        assert_eq!(s.and("disk").unwrap().lines.len(), 2);
        assert_eq!(s.not("sdc").unwrap().lines.len(), 1);
        assert_eq!(s.command(), "ERROR and disk not sdc");
        assert_eq!(s.history().len(), 3);
    }

    #[test]
    fn rerun_hits_cache() {
        let archive = archive();
        let mut s = RefiningSession::new(&archive);
        let first = s.seed("ERROR").unwrap();
        assert!(!first.stats.cache_hit);
        let again = s.rerun().unwrap();
        assert!(again.stats.cache_hit);
        assert_eq!(first.lines, again.lines);
    }

    #[test]
    fn undo_steps_back() {
        let archive = archive();
        let mut s = RefiningSession::new(&archive);
        s.seed("ERROR").unwrap();
        s.and("disk").unwrap();
        assert_eq!(s.undo(), "ERROR");
        assert_eq!(s.undo(), "");
        assert_eq!(s.undo(), "");
        // Extending an empty session seeds it.
        assert_eq!(s.and("WARN").unwrap().lines.len(), 1);
        assert_eq!(s.command(), "WARN");
    }

    #[test]
    fn agg_follows_the_refined_command() {
        use crate::query::agg::AggResult;
        use crate::query::lang::AggSpec;
        let archive = archive();
        let mut s = RefiningSession::new(&archive);
        // Empty session: the aggregate covers the whole archive.
        assert_eq!(s.agg(&AggSpec::Count).unwrap().agg, AggResult::Count(5));
        s.seed("ERROR").unwrap();
        s.and("disk").unwrap();
        assert_eq!(s.agg(&AggSpec::Count).unwrap().agg, AggResult::Count(2));
    }

    #[test]
    fn or_widens() {
        let archive = archive();
        let mut s = RefiningSession::new(&archive);
        s.seed("eth0").unwrap();
        let widened = s.or("WARN").unwrap();
        assert_eq!(widened.lines.len(), 2);
    }
}
