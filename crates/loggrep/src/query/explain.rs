//! Query plan explanation: what §5.1's Capsule locating decides *before*
//! touching any compressed data.
//!
//! [`Archive::explain`] walks the same planner the executor uses — template
//! segments, runtime patterns, Capsule stamps — but never decompresses a
//! Capsule, so it is cheap enough to run on every query for observability.

use crate::boxfile::Archive;
use crate::error::Result;
use crate::pattern::Segment;
use crate::query::lang::{AggSpec, Query};
use crate::query::plan::{plan, plan_agg, AggTargetKind, Mode, Plan, SegRef};
use crate::stats::{AggLayer, QueryStats};
use crate::vector::VectorMeta;
use logparse::Piece;
use std::fmt;

/// How one search string relates to one group, per the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupDecision {
    /// The keyword lies inside the static pattern: every row matches.
    AllRows,
    /// No possible match: the group is skipped without decompression —
    /// either the static pattern already excludes the keyword
    /// (`stamp_rejected == 0`) or every requirement died on a stamp.
    Skip {
        /// Requirements rejected by stamps on the way to this decision.
        stamp_rejected: usize,
    },
    /// `conjunctions` possible matches touching `capsules` Capsules, of
    /// which `stamp_rejected` requirements already fail their stamps.
    Scan {
        /// Number of possible matches (conjunctions).
        conjunctions: usize,
        /// Distinct Capsules that may need decompression.
        capsules: usize,
        /// Requirements rejected by stamps without decompression.
        stamp_rejected: usize,
    },
    /// The planner overflowed; the executor would scan the whole group.
    FullScan,
    /// Wildcard string: candidates come from the longest literal fragment,
    /// then rows are verified by reconstruction.
    WildcardVerify,
}

/// The plan of one search string across all groups.
#[derive(Debug, Clone)]
pub struct SearchPlan {
    /// The search string text.
    pub search: String,
    /// Decision per group (indexed like `CapsuleBox::groups`).
    pub decisions: Vec<GroupDecision>,
}

/// A full query explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The raw query.
    pub query: String,
    /// Template display per group.
    pub templates: Vec<String>,
    /// Rows per group.
    pub group_rows: Vec<u32>,
    /// One plan per search string, in expression order.
    pub searches: Vec<SearchPlan>,
}

impl Explanation {
    /// Groups that no search string can match (skippable outright).
    pub fn dead_groups(&self) -> usize {
        (0..self.templates.len())
            .filter(|&g| {
                self.searches
                    .iter()
                    .all(|s| matches!(s.decisions[g], GroupDecision::Skip { .. }))
            })
            .count()
    }

    /// Compares this explanation's predictions against the stats of an
    /// actual execution of the same query on the same archive.
    pub fn drift(&self, stats: &QueryStats) -> PlanDrift {
        let mut predicted_skips = 0usize;
        let mut predicted_scan_capsules = 0usize;
        let mut predicted_stamp_rejections = 0usize;
        let mut has_wildcards = false;
        for sp in &self.searches {
            for d in &sp.decisions {
                match d {
                    GroupDecision::Skip { stamp_rejected } => {
                        predicted_skips += 1;
                        predicted_stamp_rejections += stamp_rejected;
                    }
                    GroupDecision::Scan {
                        capsules,
                        stamp_rejected,
                        ..
                    } => {
                        predicted_scan_capsules += capsules;
                        predicted_stamp_rejections += stamp_rejected;
                    }
                    GroupDecision::WildcardVerify => has_wildcards = true,
                    GroupDecision::AllRows | GroupDecision::FullScan => {}
                }
            }
        }
        PlanDrift {
            predicted_skips,
            actual_groups_skipped: stats.groups_skipped,
            predicted_scan_capsules,
            actual_capsules_decompressed: stats.capsules_decompressed,
            predicted_stamp_rejections,
            actual_stamp_rejections: stats.stamp_rejections,
            capsules_total: stats.capsules_total as usize,
            has_wildcards,
        }
    }
}

/// Predicted-vs-actual agreement between [`Archive::explain`] and one
/// executed query — the drift report printed after a traced query.
///
/// The executor is lazy (progressive matching stops evaluating a group once
/// a conjunction dies, and an `and`'s right side never runs on groups its
/// left side emptied), so actuals are *at most* the predictions for skips
/// and stamp rejections. Decompression has no such bound: reconstructing
/// matched rows decompresses Capsules the locating plan never touches.
#[derive(Debug, Clone, Default)]
pub struct PlanDrift {
    /// (search, group) pairs the planner decided to skip.
    pub predicted_skips: usize,
    /// Group skips the executor actually took (lazy: ≤ predicted).
    pub actual_groups_skipped: usize,
    /// Upper bound on distinct Capsules the locating plan may touch
    /// (summed across searches, so shared Capsules count once per search).
    pub predicted_scan_capsules: usize,
    /// Capsules actually decompressed, including row reconstruction.
    pub actual_capsules_decompressed: usize,
    /// Requirements the planner already saw stamps reject.
    pub predicted_stamp_rejections: usize,
    /// Requirements stamps rejected during execution (lazy: ≤ predicted).
    pub actual_stamp_rejections: usize,
    /// Total Capsules in the archive (0 when stats did not record it).
    pub capsules_total: usize,
    /// Whether any search string had wildcards. The executor then plans on
    /// literal fragments the explanation never sees, so the lazy-execution
    /// bounds below do not apply and [`Self::consistent`] is vacuously true.
    pub has_wildcards: bool,
}

impl PlanDrift {
    /// Accumulates another block's drift into this one, so a multi-block
    /// archive can report one combined drift.
    pub fn absorb(&mut self, other: &PlanDrift) {
        self.predicted_skips += other.predicted_skips;
        self.actual_groups_skipped += other.actual_groups_skipped;
        self.predicted_scan_capsules += other.predicted_scan_capsules;
        self.actual_capsules_decompressed += other.actual_capsules_decompressed;
        self.predicted_stamp_rejections += other.predicted_stamp_rejections;
        self.actual_stamp_rejections += other.actual_stamp_rejections;
        self.capsules_total += other.capsules_total;
        self.has_wildcards |= other.has_wildcards;
    }

    /// True when the execution stayed within the planner's predictions
    /// (vacuously true for wildcard queries and cache hits — both execute
    /// less than the plan describes).
    pub fn consistent(&self) -> bool {
        self.has_wildcards
            || (self.actual_groups_skipped <= self.predicted_skips
                && self.actual_stamp_rejections <= self.predicted_stamp_rejections)
    }
}

impl fmt::Display for PlanDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan vs execution:")?;
        writeln!(
            f,
            "  group skips       predicted {:<6} actual {}",
            self.predicted_skips, self.actual_groups_skipped
        )?;
        writeln!(
            f,
            "  stamp rejections  predicted {:<6} actual {}",
            self.predicted_stamp_rejections, self.actual_stamp_rejections
        )?;
        let total = if self.capsules_total > 0 {
            format!(" (of {})", self.capsules_total)
        } else {
            String::new()
        };
        writeln!(
            f,
            "  capsules          scan-bound {:<5} decompressed {}{total}",
            self.predicted_scan_capsules, self.actual_capsules_decompressed
        )?;
        if self.has_wildcards {
            writeln!(f, "  (wildcard query: execution plans on literal fragments)")?;
        }
        writeln!(
            f,
            "  consistent: {}",
            if self.consistent() { "yes" } else { "NO — executor exceeded the plan" }
        )
    }
}

/// Predicted-vs-actual agreement for one aggregate query: the pushdown
/// planner's layer prediction against the layer the sink actually used.
///
/// The executor may legitimately answer *below* the prediction (an empty
/// selection short-circuits a predicted Capsule scan to a metadata-only
/// empty result), so the honest bound is `actual ≤ predicted`, with hard
/// decompression bounds where the prediction promises them.
#[derive(Debug, Clone)]
pub struct AggDrift {
    /// The layer [`Archive::explain_agg`] predicted.
    pub predicted: AggLayer,
    /// The most expensive layer the sink actually used (`None` until an
    /// execution's stats are folded in).
    pub actual: Option<AggLayer>,
    /// Whether the result came from the query cache (nothing executed).
    pub cache_hit: bool,
    /// Whether a filter restricted the selection.
    pub filtered: bool,
    /// Capsules the execution decompressed.
    pub capsules_decompressed: usize,
}

impl AggDrift {
    /// Pairs a prediction with the stats of an actual execution of the
    /// same aggregate on the same archive.
    pub fn new(predicted: AggLayer, filtered: bool, stats: &QueryStats) -> Self {
        Self {
            predicted,
            actual: stats.agg_layer,
            cache_hit: stats.cache_hit,
            filtered,
            capsules_decompressed: stats.capsules_decompressed,
        }
    }

    /// True when the execution stayed within the prediction: the actual
    /// layer never exceeds the predicted one, and unfiltered
    /// metadata/dictionary predictions hold their decompression promises
    /// (zero Capsules, and at most one, respectively). Vacuously true for
    /// cache hits.
    pub fn consistent(&self) -> bool {
        if self.cache_hit {
            return true;
        }
        if self.actual.is_some_and(|actual| actual > self.predicted) {
            return false;
        }
        if !self.filtered {
            match self.predicted {
                AggLayer::Metadata => return self.capsules_decompressed == 0,
                AggLayer::Dictionary => return self.capsules_decompressed <= 1,
                AggLayer::CapsuleScan | AggLayer::Reconstruct => {}
            }
        }
        true
    }
}

impl fmt::Display for AggDrift {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let actual = match (self.cache_hit, self.actual) {
            (true, _) => "cache-hit".to_string(),
            (false, Some(l)) => l.to_string(),
            (false, None) => "none".to_string(),
        };
        writeln!(
            f,
            "aggregate layer: predicted {} actual {} ({} capsule(s) decompressed)",
            self.predicted, actual, self.capsules_decompressed
        )?;
        writeln!(
            f,
            "  consistent: {}",
            if self.consistent() {
                "yes"
            } else {
                "NO — sink exceeded the planned layer"
            }
        )
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "explain: {}", self.query)?;
        for sp in &self.searches {
            writeln!(f, "  search `{}`:", sp.search)?;
            for (g, d) in sp.decisions.iter().enumerate() {
                let what = match d {
                    GroupDecision::AllRows => "ALL (keyword in static pattern)".to_string(),
                    GroupDecision::Skip { .. } => "skip".to_string(),
                    GroupDecision::Scan {
                        conjunctions,
                        capsules,
                        stamp_rejected,
                    } => format!(
                        "scan: {conjunctions} possible match(es), {capsules} capsule(s), {stamp_rejected} stamp-rejected"
                    ),
                    GroupDecision::FullScan => "full group scan (planner overflow)".to_string(),
                    GroupDecision::WildcardVerify => {
                        "wildcard: filter + verify by reconstruction".to_string()
                    }
                };
                if !matches!(d, GroupDecision::Skip { .. }) {
                    writeln!(
                        f,
                        "    group {g} [{} rows] {}: {what}",
                        self.group_rows[g], self.templates[g]
                    )?;
                }
            }
        }
        writeln!(f, "  ({} of {} groups dead)", self.dead_groups(), self.templates.len())
    }
}

impl Archive {
    /// Explains how a query would be located, without decompressing any
    /// Capsule.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadQuery`] if the command does not parse.
    pub fn explain(&self, command: &str) -> Result<Explanation> {
        let query = Query::parse(command)?;
        let groups = &self.boxed.groups;
        let templates: Vec<String> = groups.iter().map(|g| g.template.display()).collect();
        let group_rows: Vec<u32> = groups.iter().map(|g| g.rows()).collect();

        let mut searches = Vec::new();
        for s in query.expr.search_strings() {
            let mut decisions = Vec::with_capacity(groups.len());
            for group in groups {
                if s.as_literal().is_none() {
                    decisions.push(GroupDecision::WildcardVerify);
                    continue;
                }
                let kw = s.as_literal().expect("checked literal");
                let segs: Vec<SegRef<'_>> = group
                    .template
                    .pieces()
                    .iter()
                    .map(|p| match p {
                        Piece::Static(text) => SegRef::Const(text.as_slice()),
                        Piece::Slot(i) => SegRef::Var(*i),
                    })
                    .collect();
                decisions.push(match plan(&segs, kw, Mode::Contains) {
                    Plan::All => GroupDecision::AllRows,
                    Plan::Overflow => GroupDecision::FullScan,
                    Plan::Conjs(conjs) if conjs.is_empty() => {
                        GroupDecision::Skip { stamp_rejected: 0 }
                    }
                    Plan::Conjs(conjs) => {
                        let mut capsules = std::collections::HashSet::new();
                        let mut stamp_rejected = 0usize;
                        for conj in &conjs {
                            for req in conj {
                                let part = &kw[req.lo..req.hi];
                                self.explain_requirement(
                                    group,
                                    req.var,
                                    part,
                                    &mut capsules,
                                    &mut stamp_rejected,
                                );
                            }
                        }
                        if capsules.is_empty() {
                            // Every requirement died on a stamp: the group
                            // is skipped without touching compressed data.
                            GroupDecision::Skip { stamp_rejected }
                        } else {
                            GroupDecision::Scan {
                                conjunctions: conjs.len(),
                                capsules: capsules.len(),
                                stamp_rejected,
                            }
                        }
                    }
                });
            }
            searches.push(SearchPlan {
                search: s.raw.clone(),
                decisions,
            });
        }
        Ok(Explanation {
            query: command.to_string(),
            templates,
            group_rows,
            searches,
        })
    }

    /// Predicts which storage layer will answer an aggregate query,
    /// without decompressing any Capsule (the pushdown decision of
    /// [`plan_agg`] applied to this archive's vector metadata).
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadQuery`] if the filter does not parse.
    pub fn explain_agg(&self, filter: Option<&str>, spec: &AggSpec) -> Result<AggLayer> {
        if let Some(f) = filter {
            Query::parse(f)?;
        }
        let target = match spec {
            AggSpec::TopK { template, slot, .. } => self.agg_target_kind(*template, *slot),
            _ => AggTargetKind::Missing,
        };
        Ok(plan_agg(spec, target, filter.is_some()))
    }

    /// Accounts the Capsules one slot-requirement would touch.
    fn explain_requirement(
        &self,
        group: &crate::boxfile::GroupMeta,
        slot: usize,
        part: &[u8],
        capsules: &mut std::collections::HashSet<u32>,
        stamp_rejected: &mut usize,
    ) {
        match &group.vectors[slot] {
            VectorMeta::Plain { capsule } => {
                if self.boxed.capsules[*capsule as usize].stamp.admits(part) {
                    capsules.insert(*capsule);
                } else {
                    *stamp_rejected += 1;
                }
            }
            VectorMeta::Real {
                pattern,
                sub_caps,
                outlier_cap,
                outlier_rows,
            } => {
                let segs: Vec<SegRef<'_>> = pattern
                    .segments
                    .iter()
                    .map(|seg| match seg {
                        Segment::Const(c) => SegRef::Const(c.as_slice()),
                        Segment::Var(v) => SegRef::Var(*v),
                    })
                    .collect();
                if let Plan::Conjs(conjs) = plan(&segs, part, Mode::Contains) {
                    for conj in &conjs {
                        for req in conj {
                            let cap = sub_caps[req.var];
                            let sub = &part[req.lo..req.hi];
                            if self.boxed.capsules[cap as usize].stamp.admits(sub) {
                                capsules.insert(cap);
                            } else {
                                *stamp_rejected += 1;
                            }
                        }
                    }
                }
                if !outlier_rows.is_empty() {
                    capsules.insert(*outlier_cap);
                }
            }
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                ..
            } => {
                // Same could-match test the executor runs: pattern structure
                // plus the per-sub-variable stamps. Rejections are counted
                // per dictionary pattern region, exactly as the executor
                // does, so a drift report can bound actual by predicted.
                let mut could = false;
                for p in patterns {
                    if part.len() as u32 > p.max_len {
                        continue;
                    }
                    let segs: Vec<SegRef<'_>> = p
                        .pattern
                        .segments
                        .iter()
                        .map(|seg| match seg {
                            Segment::Const(c) => SegRef::Const(c.as_slice()),
                            Segment::Var(v) => SegRef::Var(*v),
                        })
                        .collect();
                    match plan(&segs, part, Mode::Contains) {
                        Plan::All | Plan::Overflow => could = true,
                        Plan::Conjs(conjs) => {
                            let ok = conjs.iter().any(|conj| {
                                conj.iter().all(|req| {
                                    p.pattern.sub_stamps[req.var]
                                        .admits(&part[req.lo..req.hi])
                                })
                            });
                            if ok {
                                could = true;
                            } else if !conjs.is_empty() {
                                *stamp_rejected += 1;
                            }
                        }
                    }
                }
                if could {
                    capsules.insert(*dict_cap);
                    capsules.insert(*index_cap);
                } else {
                    *stamp_rejected += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogGrep, LogGrepConfig};

    fn archive() -> Archive {
        let mut raw = Vec::new();
        for i in 0..200 {
            raw.extend_from_slice(format!("alpha job {:04} fine\n", i).as_bytes());
            if i % 20 == 0 {
                raw.extend_from_slice(format!("beta crash {:04} bad\n", i).as_bytes());
            }
        }
        LogGrep::new(LogGrepConfig::default())
            .compress_to_archive(&raw)
            .unwrap()
    }

    #[test]
    fn static_hit_explains_as_all() {
        let a = archive();
        let ex = a.explain("crash").unwrap();
        assert!(ex.searches[0].decisions.contains(&GroupDecision::AllRows));
    }

    #[test]
    fn absent_keyword_kills_all_groups() {
        let a = archive();
        let ex = a.explain("zzz-never").unwrap();
        assert_eq!(ex.dead_groups(), ex.templates.len());
    }

    #[test]
    fn numeric_keyword_scans_some_group() {
        let a = archive();
        let ex = a.explain("0040").unwrap();
        assert!(ex.searches[0]
            .decisions
            .iter()
            .any(|d| matches!(d, GroupDecision::Scan { .. })));
    }

    #[test]
    fn wildcard_marks_verification() {
        let a = archive();
        let ex = a.explain("jo*b").unwrap();
        assert!(ex.searches[0]
            .decisions
            .iter()
            .all(|d| *d == GroupDecision::WildcardVerify));
    }

    #[test]
    fn display_renders() {
        let a = archive();
        let text = a.explain("crash and 0040").unwrap().to_string();
        assert!(text.contains("explain: crash and 0040"));
        assert!(text.contains("groups dead"));
    }

    #[test]
    fn drift_bounds_hold_for_literal_queries() {
        let a = archive();
        for q in ["crash", "0040", "crash and 0040", "zzz-never", "fine or bad"] {
            let ex = a.explain(q).unwrap();
            let result = a.query(q).unwrap();
            let drift = ex.drift(&result.stats);
            assert!(!drift.has_wildcards);
            assert!(drift.consistent(), "query `{q}`: {drift}");
            assert!(
                drift.actual_groups_skipped <= drift.predicted_skips,
                "query `{q}`: {drift}"
            );
            assert!(
                drift.actual_stamp_rejections <= drift.predicted_stamp_rejections,
                "query `{q}`: {drift}"
            );
        }
    }

    #[test]
    fn drift_is_vacuous_for_wildcards() {
        let a = archive();
        let ex = a.explain("jo*b").unwrap();
        let result = a.query("jo*b").unwrap();
        let drift = ex.drift(&result.stats);
        assert!(drift.has_wildcards);
        assert!(drift.consistent());
        let text = drift.to_string();
        assert!(text.contains("plan vs execution"));
        assert!(text.contains("wildcard"));
    }

    #[test]
    fn agg_drift_bounds_hold_for_every_verb() {
        let a = archive();
        let mut specs = vec![
            AggSpec::Count,
            AggSpec::CountByTemplate,
            AggSpec::Histogram { bucket: 50 },
        ];
        for (t, group) in a.boxed.groups.iter().enumerate() {
            for v in 0..group.vectors.len() {
                specs.push(AggSpec::TopK { k: 3, template: t, slot: v });
            }
        }
        // A missing target must predict (and execute as) pure metadata.
        specs.push(AggSpec::TopK { k: 3, template: 99, slot: 0 });
        for spec in &specs {
            for filter in [None, Some("crash")] {
                let predicted = a.explain_agg(filter, spec).unwrap();
                a.clear_caches();
                let r = a.query_agg(filter, spec).unwrap();
                let drift = AggDrift::new(predicted, filter.is_some(), &r.stats);
                assert!(!drift.cache_hit);
                assert!(drift.consistent(), "{spec} filter {filter:?}: {drift}");
            }
        }
    }

    #[test]
    fn metadata_verbs_decompress_nothing() {
        let a = archive();
        let specs = [
            AggSpec::Count,
            AggSpec::CountByTemplate,
            AggSpec::Histogram { bucket: 25 },
        ];
        for spec in specs {
            a.clear_caches();
            let r = a.query_agg(None, &spec).unwrap();
            assert_eq!(r.stats.capsules_decompressed, 0, "{spec}");
            assert_eq!(r.stats.agg_layer, Some(AggLayer::Metadata), "{spec}");
        }
    }

    #[test]
    fn explain_decompresses_nothing() {
        let a = archive();
        let _ = a.explain("crash and 0040 or fine").unwrap();
        // Explanation must not have warmed the query cache either.
        let result = a.query("crash and 0040").unwrap();
        assert!(!result.stats.cache_hit);
    }
}
