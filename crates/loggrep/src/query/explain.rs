//! Query plan explanation: what §5.1's Capsule locating decides *before*
//! touching any compressed data.
//!
//! [`Archive::explain`] walks the same planner the executor uses — template
//! segments, runtime patterns, Capsule stamps — but never decompresses a
//! Capsule, so it is cheap enough to run on every query for observability.

use crate::boxfile::Archive;
use crate::error::Result;
use crate::pattern::Segment;
use crate::query::lang::Query;
use crate::query::plan::{plan, Mode, Plan, SegRef};
use crate::vector::VectorMeta;
use logparse::Piece;
use std::fmt;

/// How one search string relates to one group, per the planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupDecision {
    /// The keyword lies inside the static pattern: every row matches.
    AllRows,
    /// No possible match: the group is skipped without decompression.
    Skip,
    /// `conjunctions` possible matches touching `capsules` Capsules, of
    /// which `stamp_rejected` requirements already fail their stamps.
    Scan {
        /// Number of possible matches (conjunctions).
        conjunctions: usize,
        /// Distinct Capsules that may need decompression.
        capsules: usize,
        /// Requirements rejected by stamps without decompression.
        stamp_rejected: usize,
    },
    /// The planner overflowed; the executor would scan the whole group.
    FullScan,
    /// Wildcard string: candidates come from the longest literal fragment,
    /// then rows are verified by reconstruction.
    WildcardVerify,
}

/// The plan of one search string across all groups.
#[derive(Debug, Clone)]
pub struct SearchPlan {
    /// The search string text.
    pub search: String,
    /// Decision per group (indexed like `CapsuleBox::groups`).
    pub decisions: Vec<GroupDecision>,
}

/// A full query explanation.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The raw query.
    pub query: String,
    /// Template display per group.
    pub templates: Vec<String>,
    /// Rows per group.
    pub group_rows: Vec<u32>,
    /// One plan per search string, in expression order.
    pub searches: Vec<SearchPlan>,
}

impl Explanation {
    /// Groups that no search string can match (skippable outright).
    pub fn dead_groups(&self) -> usize {
        (0..self.templates.len())
            .filter(|&g| {
                self.searches
                    .iter()
                    .all(|s| s.decisions[g] == GroupDecision::Skip)
            })
            .count()
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "explain: {}", self.query)?;
        for sp in &self.searches {
            writeln!(f, "  search `{}`:", sp.search)?;
            for (g, d) in sp.decisions.iter().enumerate() {
                let what = match d {
                    GroupDecision::AllRows => "ALL (keyword in static pattern)".to_string(),
                    GroupDecision::Skip => "skip".to_string(),
                    GroupDecision::Scan {
                        conjunctions,
                        capsules,
                        stamp_rejected,
                    } => format!(
                        "scan: {conjunctions} possible match(es), {capsules} capsule(s), {stamp_rejected} stamp-rejected"
                    ),
                    GroupDecision::FullScan => "full group scan (planner overflow)".to_string(),
                    GroupDecision::WildcardVerify => {
                        "wildcard: filter + verify by reconstruction".to_string()
                    }
                };
                if *d != GroupDecision::Skip {
                    writeln!(
                        f,
                        "    group {g} [{} rows] {}: {what}",
                        self.group_rows[g], self.templates[g]
                    )?;
                }
            }
        }
        writeln!(f, "  ({} of {} groups dead)", self.dead_groups(), self.templates.len())
    }
}

impl Archive {
    /// Explains how a query would be located, without decompressing any
    /// Capsule.
    ///
    /// # Errors
    ///
    /// Returns [`crate::Error::BadQuery`] if the command does not parse.
    pub fn explain(&self, command: &str) -> Result<Explanation> {
        let query = Query::parse(command)?;
        let groups = &self.boxed.groups;
        let templates: Vec<String> = groups.iter().map(|g| g.template.display()).collect();
        let group_rows: Vec<u32> = groups.iter().map(|g| g.rows()).collect();

        let mut searches = Vec::new();
        for s in query.expr.search_strings() {
            let mut decisions = Vec::with_capacity(groups.len());
            for group in groups {
                if s.as_literal().is_none() {
                    decisions.push(GroupDecision::WildcardVerify);
                    continue;
                }
                let kw = s.as_literal().expect("checked literal");
                let segs: Vec<SegRef<'_>> = group
                    .template
                    .pieces()
                    .iter()
                    .map(|p| match p {
                        Piece::Static(text) => SegRef::Const(text.as_slice()),
                        Piece::Slot(i) => SegRef::Var(*i),
                    })
                    .collect();
                decisions.push(match plan(&segs, kw, Mode::Contains) {
                    Plan::All => GroupDecision::AllRows,
                    Plan::Overflow => GroupDecision::FullScan,
                    Plan::Conjs(conjs) if conjs.is_empty() => GroupDecision::Skip,
                    Plan::Conjs(conjs) => {
                        let mut capsules = std::collections::HashSet::new();
                        let mut stamp_rejected = 0usize;
                        for conj in &conjs {
                            for req in conj {
                                let part = &kw[req.lo..req.hi];
                                self.explain_requirement(
                                    group,
                                    req.var,
                                    part,
                                    &mut capsules,
                                    &mut stamp_rejected,
                                );
                            }
                        }
                        if capsules.is_empty() {
                            // Every requirement died on a stamp: the group
                            // is skipped without touching compressed data.
                            GroupDecision::Skip
                        } else {
                            GroupDecision::Scan {
                                conjunctions: conjs.len(),
                                capsules: capsules.len(),
                                stamp_rejected,
                            }
                        }
                    }
                });
            }
            searches.push(SearchPlan {
                search: s.raw.clone(),
                decisions,
            });
        }
        Ok(Explanation {
            query: command.to_string(),
            templates,
            group_rows,
            searches,
        })
    }

    /// Accounts the Capsules one slot-requirement would touch.
    fn explain_requirement(
        &self,
        group: &crate::boxfile::GroupMeta,
        slot: usize,
        part: &[u8],
        capsules: &mut std::collections::HashSet<u32>,
        stamp_rejected: &mut usize,
    ) {
        match &group.vectors[slot] {
            VectorMeta::Plain { capsule } => {
                if self.boxed.capsules[*capsule as usize].stamp.admits(part) {
                    capsules.insert(*capsule);
                } else {
                    *stamp_rejected += 1;
                }
            }
            VectorMeta::Real {
                pattern,
                sub_caps,
                outlier_cap,
                outlier_rows,
            } => {
                let segs: Vec<SegRef<'_>> = pattern
                    .segments
                    .iter()
                    .map(|seg| match seg {
                        Segment::Const(c) => SegRef::Const(c.as_slice()),
                        Segment::Var(v) => SegRef::Var(*v),
                    })
                    .collect();
                if let Plan::Conjs(conjs) = plan(&segs, part, Mode::Contains) {
                    for conj in &conjs {
                        for req in conj {
                            let cap = sub_caps[req.var];
                            let sub = &part[req.lo..req.hi];
                            if self.boxed.capsules[cap as usize].stamp.admits(sub) {
                                capsules.insert(cap);
                            } else {
                                *stamp_rejected += 1;
                            }
                        }
                    }
                }
                if !outlier_rows.is_empty() {
                    capsules.insert(*outlier_cap);
                }
            }
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                ..
            } => {
                // Same could-match test the executor runs: pattern structure
                // plus the per-sub-variable stamps.
                let could = patterns.iter().any(|p| {
                    if part.len() as u32 > p.max_len {
                        return false;
                    }
                    let segs: Vec<SegRef<'_>> = p
                        .pattern
                        .segments
                        .iter()
                        .map(|seg| match seg {
                            Segment::Const(c) => SegRef::Const(c.as_slice()),
                            Segment::Var(v) => SegRef::Var(*v),
                        })
                        .collect();
                    match plan(&segs, part, Mode::Contains) {
                        Plan::All | Plan::Overflow => true,
                        Plan::Conjs(conjs) => conjs.iter().any(|conj| {
                            conj.iter().all(|req| {
                                p.pattern.sub_stamps[req.var]
                                    .admits(&part[req.lo..req.hi])
                            })
                        }),
                    }
                });
                if could {
                    capsules.insert(*dict_cap);
                    capsules.insert(*index_cap);
                } else {
                    *stamp_rejected += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogGrep, LogGrepConfig};

    fn archive() -> Archive {
        let mut raw = Vec::new();
        for i in 0..200 {
            raw.extend_from_slice(format!("alpha job {:04} fine\n", i).as_bytes());
            if i % 20 == 0 {
                raw.extend_from_slice(format!("beta crash {:04} bad\n", i).as_bytes());
            }
        }
        LogGrep::new(LogGrepConfig::default())
            .compress_to_archive(&raw)
            .unwrap()
    }

    #[test]
    fn static_hit_explains_as_all() {
        let a = archive();
        let ex = a.explain("crash").unwrap();
        assert!(ex
            .searches[0]
            .decisions
            .iter()
            .any(|d| *d == GroupDecision::AllRows));
    }

    #[test]
    fn absent_keyword_kills_all_groups() {
        let a = archive();
        let ex = a.explain("zzz-never").unwrap();
        assert_eq!(ex.dead_groups(), ex.templates.len());
    }

    #[test]
    fn numeric_keyword_scans_some_group() {
        let a = archive();
        let ex = a.explain("0040").unwrap();
        assert!(ex.searches[0]
            .decisions
            .iter()
            .any(|d| matches!(d, GroupDecision::Scan { .. })));
    }

    #[test]
    fn wildcard_marks_verification() {
        let a = archive();
        let ex = a.explain("jo*b").unwrap();
        assert!(ex.searches[0]
            .decisions
            .iter()
            .all(|d| *d == GroupDecision::WildcardVerify));
    }

    #[test]
    fn display_renders() {
        let a = archive();
        let text = a.explain("crash and 0040").unwrap().to_string();
        assert!(text.contains("explain: crash and 0040"));
        assert!(text.contains("groups dead"));
    }

    #[test]
    fn explain_decompresses_nothing() {
        let a = archive();
        let _ = a.explain("crash and 0040 or fine").unwrap();
        // Explanation must not have warmed the query cache either.
        let result = a.query("crash and 0040").unwrap();
        assert!(!result.stats.cache_hit);
    }
}
