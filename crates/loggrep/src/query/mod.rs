//! Query planning and execution (§5).

pub mod agg;
pub mod cache;
pub mod exec;
pub mod explain;
pub mod lang;
pub mod plan;
pub mod session;

pub use agg::{AggQueryResult, AggResult};
pub use exec::QueryResult;
