//! Query planning and execution (§5).

pub mod cache;
pub mod exec;
pub mod explain;
pub mod lang;
pub mod plan;
pub mod session;

pub use exec::QueryResult;
