//! The grep-like query language (§3, §5).
//!
//! A query is search strings joined by `and` / `or` / `not` (case
//! insensitive), e.g. `error AND dst:11.8.* NOT state:503`. A search string
//! may span several tokens (`socket read length failure`) and may contain
//! `*` wildcards, which match within a single token only — a wildcard never
//! crosses token delimiters or line breaks.

use crate::error::{Error, Result};

/// One element of a compiled search string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Element {
    /// Literal bytes that must appear verbatim.
    Lit(Vec<u8>),
    /// `*`: any run (possibly empty) of non-delimiter bytes.
    Star,
}

/// A compiled search string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchString {
    /// The original text.
    pub raw: String,
    /// Compiled elements (consecutive stars collapsed).
    pub elements: Vec<Element>,
}

impl SearchString {
    /// Compiles a search string.
    pub fn compile(text: &str) -> Result<Self> {
        if text.is_empty() {
            return Err(Error::BadQuery("empty search string".into()));
        }
        let mut elements = Vec::new();
        let mut lit = Vec::new();
        for &b in text.as_bytes() {
            if b == b'*' {
                if !lit.is_empty() {
                    elements.push(Element::Lit(std::mem::take(&mut lit)));
                }
                if !matches!(elements.last(), Some(Element::Star)) {
                    elements.push(Element::Star);
                }
            } else {
                lit.push(b);
            }
        }
        if !lit.is_empty() {
            elements.push(Element::Lit(lit));
        }
        if elements.iter().all(|e| matches!(e, Element::Star)) {
            return Err(Error::BadQuery(format!(
                "search string `{text}` has no literal content"
            )));
        }
        Ok(Self {
            raw: text.to_string(),
            elements,
        })
    }

    /// True if the string contains a wildcard.
    pub fn has_wildcard(&self) -> bool {
        self.elements.iter().any(|e| matches!(e, Element::Star))
    }

    /// The literal bytes if the string has no wildcard.
    pub fn as_literal(&self) -> Option<&[u8]> {
        match (&self.elements[..], self.has_wildcard()) {
            ([Element::Lit(l)], false) => Some(l),
            _ => None,
        }
    }

    /// The longest literal fragment (pre-filter for wildcard strings).
    pub fn longest_literal(&self) -> &[u8] {
        self.elements
            .iter()
            .filter_map(|e| match e {
                Element::Lit(l) => Some(l.as_slice()),
                Element::Star => None,
            })
            .fold(&b""[..], |best, l| if l.len() > best.len() { l } else { best })
    }

    /// Ground-truth matcher: does the string occur in `line`, with `*`
    /// confined to runs of non-delimiter bytes? This is the oracle the
    /// gzip+grep baseline uses and the reference the engine must agree with.
    pub fn matches_line(&self, line: &[u8], delims: &[u8]) -> bool {
        if !self.has_wildcard() {
            if let Some(Element::Lit(l)) = self.elements.first() {
                return strsearch::contains(line, l);
            }
        }
        (0..=line.len()).any(|start| Self::match_at(&self.elements, line, start, delims))
    }

    fn match_at(elements: &[Element], line: &[u8], pos: usize, delims: &[u8]) -> bool {
        match elements.first() {
            None => true,
            Some(Element::Lit(l)) => {
                line[pos..].starts_with(l)
                    && Self::match_at(&elements[1..], line, pos + l.len(), delims)
            }
            Some(Element::Star) => {
                // Consume 0..k non-delimiter bytes, backtracking.
                let mut end = pos;
                loop {
                    if Self::match_at(&elements[1..], line, end, delims) {
                        return true;
                    }
                    if end >= line.len() || delims.contains(&line[end]) || line[end] == b'\n' {
                        return false;
                    }
                    end += 1;
                }
            }
        }
    }
}

/// A parsed query expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A single search string.
    Str(SearchString),
    /// Both sides must match (`and`).
    And(Box<Expr>, Box<Expr>),
    /// Either side matches (`or`).
    Or(Box<Expr>, Box<Expr>),
    /// Left matches and right does not (`not`, binary as in Table 1).
    Not(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates the expression against one line (the oracle semantics).
    pub fn matches_line(&self, line: &[u8], delims: &[u8]) -> bool {
        match self {
            Expr::Str(s) => s.matches_line(line, delims),
            Expr::And(a, b) => a.matches_line(line, delims) && b.matches_line(line, delims),
            Expr::Or(a, b) => a.matches_line(line, delims) || b.matches_line(line, delims),
            Expr::Not(a, b) => a.matches_line(line, delims) && !b.matches_line(line, delims),
        }
    }

    /// All search strings in the expression, left to right.
    pub fn search_strings(&self) -> Vec<&SearchString> {
        match self {
            Expr::Str(s) => vec![s],
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Not(a, b) => {
                let mut v = a.search_strings();
                v.extend(b.search_strings());
                v
            }
        }
    }
}

/// A parsed query: the raw text plus the expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The raw query text (the query-cache key).
    pub raw: String,
    /// The parsed expression.
    pub expr: Expr,
}

impl Query {
    /// Parses a query command.
    ///
    /// Words are whitespace-separated; the standalone words `and`, `or`,
    /// `not` (any case) are operators, everything between two operators is
    /// one search string (inner whitespace normalized to single spaces).
    /// Operators associate left: `A and B not C or D` means
    /// `((A and B) not C) or D`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadQuery`] on empty queries, dangling operators, or
    /// search strings with no literal content.
    pub fn parse(text: &str) -> Result<Query> {
        #[derive(PartialEq, Clone, Copy)]
        enum Op {
            And,
            Or,
            Not,
        }
        let mut expr: Option<Expr> = None;
        let mut pending_op: Option<Op> = None;
        let mut current: Vec<&str> = Vec::new();

        let flush = |expr: &mut Option<Expr>,
                         pending_op: &mut Option<Op>,
                         current: &mut Vec<&str>|
         -> Result<()> {
            if current.is_empty() {
                return if pending_op.is_some() || expr.is_none() {
                    Err(Error::BadQuery("operator without operand".into()))
                } else {
                    Ok(())
                };
            }
            let s = SearchString::compile(&current.join(" "))?;
            current.clear();
            let rhs = Expr::Str(s);
            *expr = Some(match (expr.take(), pending_op.take()) {
                (None, None) => rhs,
                (Some(lhs), Some(Op::And)) => Expr::And(Box::new(lhs), Box::new(rhs)),
                (Some(lhs), Some(Op::Or)) => Expr::Or(Box::new(lhs), Box::new(rhs)),
                (Some(lhs), Some(Op::Not)) => Expr::Not(Box::new(lhs), Box::new(rhs)),
                (None, Some(_)) => return Err(Error::BadQuery("query starts with operator".into())),
                (Some(_), None) => unreachable!("operands always separated by operators"),
            });
            Ok(())
        };

        for word in text.split_whitespace() {
            let op = match word.to_ascii_lowercase().as_str() {
                "and" => Some(Op::And),
                "or" => Some(Op::Or),
                "not" => Some(Op::Not),
                _ => None,
            };
            match op {
                Some(op) => {
                    flush(&mut expr, &mut pending_op, &mut current)?;
                    if expr.is_none() {
                        return Err(Error::BadQuery("query starts with operator".into()));
                    }
                    pending_op = Some(op);
                }
                None => current.push(word),
            }
        }
        flush(&mut expr, &mut pending_op, &mut current)?;
        if pending_op.is_some() {
            return Err(Error::BadQuery("query ends with operator".into()));
        }
        let expr = expr.ok_or_else(|| Error::BadQuery("empty query".into()))?;
        Ok(Query {
            raw: text.to_string(),
            expr,
        })
    }
}

/// An aggregate verb: what to compute over the (optionally filtered) lines.
///
/// Rendered/parsed syntax (the `--agg` argument and the cache-key form):
///
/// * `count` — number of matching lines;
/// * `count-by-template` — matching lines per static pattern;
/// * `top-K tT.vS` — value frequencies of slot `S` of template `T`
///   (e.g. `top-3 t0.v2`), reported as the `K` most frequent values;
/// * `histogram B` — matching lines per bucket of `B` consecutive line
///   numbers (a time histogram once timestamps index the lines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    /// Count matching lines.
    Count,
    /// Count matching lines per template (static pattern).
    CountByTemplate,
    /// The `k` most frequent values of one template slot.
    TopK {
        /// How many values to report.
        k: usize,
        /// Template (group) index.
        template: usize,
        /// Variable slot index within the template.
        slot: usize,
    },
    /// Matching lines per bucket of `bucket` consecutive line numbers.
    Histogram {
        /// Bucket width in lines (> 0).
        bucket: u64,
    },
}

impl AggSpec {
    /// Parses an aggregate verb (see the type docs for the syntax).
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadQuery`] on unknown verbs, malformed `tT.vS`
    /// targets, zero `K`/bucket widths, or trailing words.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |what: &str| Error::BadQuery(format!("bad aggregate `{text}`: {what}"));
        let mut words = text.split_whitespace();
        let head = words
            .next()
            .ok_or_else(|| Error::BadQuery("empty aggregate".into()))?
            .to_ascii_lowercase();
        let spec = match head.as_str() {
            "count" => AggSpec::Count,
            "count-by-template" => AggSpec::CountByTemplate,
            "histogram" => {
                let bucket: u64 = words
                    .next()
                    .ok_or_else(|| bad("histogram needs a bucket width"))?
                    .parse()
                    .map_err(|_| bad("bucket width must be a number"))?;
                if bucket == 0 {
                    return Err(bad("bucket width must be > 0"));
                }
                AggSpec::Histogram { bucket }
            }
            _ if head.starts_with("top-") => {
                let k: usize = head[4..]
                    .parse()
                    .map_err(|_| bad("top-K needs a numeric K"))?;
                if k == 0 {
                    return Err(bad("K must be > 0"));
                }
                let target = words.next().ok_or_else(|| bad("top-K needs a tT.vS target"))?;
                let (t, v) = target
                    .split_once('.')
                    .filter(|(t, v)| t.starts_with('t') && v.starts_with('v'))
                    .ok_or_else(|| bad("target must look like t0.v2"))?;
                let template = t[1..].parse().map_err(|_| bad("bad template index"))?;
                let slot = v[1..].parse().map_err(|_| bad("bad slot index"))?;
                AggSpec::TopK { k, template, slot }
            }
            _ => return Err(bad("unknown verb")),
        };
        if words.next().is_some() {
            return Err(bad("trailing words"));
        }
        Ok(spec)
    }

    /// The canonical textual form (parses back to the same spec; used as
    /// the aggregate cache-key component).
    pub fn render(&self) -> String {
        match self {
            AggSpec::Count => "count".to_string(),
            AggSpec::CountByTemplate => "count-by-template".to_string(),
            AggSpec::TopK { k, template, slot } => format!("top-{k} t{template}.v{slot}"),
            AggSpec::Histogram { bucket } => format!("histogram {bucket}"),
        }
    }
}

impl std::fmt::Display for AggSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logparse::DEFAULT_DELIMS;

    fn m(s: &str, line: &str) -> bool {
        SearchString::compile(s)
            .unwrap()
            .matches_line(line.as_bytes(), DEFAULT_DELIMS)
    }

    #[test]
    fn literal_substring_semantics() {
        assert!(m("read", "T134 bk.FF.13 read"));
        assert!(m("bk.FF", "T134 bk.FF.13 read"));
        assert!(!m("write", "T134 bk.FF.13 read"));
        assert!(m("state: SUC", "T169 state: SUC#1604"));
    }

    #[test]
    fn wildcard_within_token() {
        assert!(m("dst:11.8.*", "error dst:11.8.42 x"));
        assert!(m("dst:11.8.* x", "error dst:11.8.42 x"));
        assert!(!m("dst:11.9.*", "error dst:11.8.42 x"));
        // A star must not cross a space.
        assert!(!m("dst:*done", "dst:abc then done"));
        assert!(m("dst:*one", "dst:someone said"));
    }

    #[test]
    fn star_can_be_empty() {
        assert!(m("a*b", "ab"));
        assert!(m("blk_*", "blk_"));
    }

    #[test]
    fn parse_table1_style_queries() {
        let q = Query::parse("ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D").unwrap();
        assert_eq!(q.expr.search_strings().len(), 4);
        let q2 = Query::parse("ERROR and socket read length failure -104").unwrap();
        let ss = q2.expr.search_strings();
        assert_eq!(ss.len(), 2);
        assert_eq!(ss[1].raw, "socket read length failure -104");
    }

    #[test]
    fn left_associativity() {
        let q = Query::parse("A and B not C or D").unwrap();
        match &q.expr {
            Expr::Or(lhs, _) => match &**lhs {
                Expr::Not(lhs2, _) => assert!(matches!(&**lhs2, Expr::And(_, _))),
                other => panic!("expected Not, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn expr_oracle_semantics() {
        let q = Query::parse("ERROR not UserId:-2").unwrap();
        assert!(q.expr.matches_line(b"ERROR UserId:7 boom", DEFAULT_DELIMS));
        assert!(!q.expr.matches_line(b"ERROR UserId:-2 boom", DEFAULT_DELIMS));
        assert!(!q.expr.matches_line(b"WARN UserId:7", DEFAULT_DELIMS));
    }

    #[test]
    fn bad_queries_rejected() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("and x").is_err());
        assert!(Query::parse("x and").is_err());
        assert!(Query::parse("x and and y").is_err());
        assert!(Query::parse("*").is_err());
        assert!(Query::parse("**").is_err());
    }

    #[test]
    fn case_insensitive_operators() {
        let q = Query::parse("alpha AND beta Or gamma NOT delta").unwrap();
        assert_eq!(q.expr.search_strings().len(), 4);
    }

    #[test]
    fn agg_spec_parse_and_render_roundtrip() {
        let cases = [
            ("count", AggSpec::Count),
            ("count-by-template", AggSpec::CountByTemplate),
            ("top-3 t0.v2", AggSpec::TopK { k: 3, template: 0, slot: 2 }),
            ("top-10 t12.v0", AggSpec::TopK { k: 10, template: 12, slot: 0 }),
            ("histogram 50", AggSpec::Histogram { bucket: 50 }),
        ];
        for (text, want) in cases {
            let got = AggSpec::parse(text).unwrap();
            assert_eq!(got, want, "{text}");
            assert_eq!(AggSpec::parse(&got.render()).unwrap(), want, "{text}");
        }
        // Whitespace and verb case are normalized; targets are not.
        assert_eq!(
            AggSpec::parse("  COUNT ").unwrap(),
            AggSpec::Count,
        );
        assert_eq!(
            AggSpec::parse("Top-2  t1.v1").unwrap(),
            AggSpec::TopK { k: 2, template: 1, slot: 1 },
        );
    }

    #[test]
    fn bad_agg_specs_rejected() {
        for text in [
            "",
            "sum",
            "count extra",
            "top-0 t0.v0",
            "top-x t0.v0",
            "top-3",
            "top-3 v0.t0",
            "top-3 t0v0",
            "top-3 t.v0",
            "histogram",
            "histogram 0",
            "histogram x",
            "histogram 5 5",
        ] {
            assert!(AggSpec::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn longest_literal_fragment() {
        let s = SearchString::compile("blk_*.tmp").unwrap();
        assert_eq!(s.longest_literal(), b"blk_");
        let t = SearchString::compile("plain").unwrap();
        assert_eq!(t.longest_literal(), b"plain");
        assert_eq!(t.as_literal(), Some(&b"plain"[..]));
        assert_eq!(s.as_literal(), None);
    }
}
