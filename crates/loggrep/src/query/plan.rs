//! Keyword matching on patterns (§5.1): enumerate all *possible matches* of
//! a keyword on a pattern of constants and variables.
//!
//! The same enumeration serves two levels: a static pattern (variables are
//! template slots) and a runtime pattern (variables are sub-variable
//! Capsules). Each possible match is a conjunction of requirements
//! `Exact/Prefix/Suffix/Contains(part)` on variables — the head, tail and
//! body cases of Figure 6 fall out of the recursion over constants.

pub use strsearch::fixed::Mode;

/// A segment reference handed to the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegRef<'a> {
    /// Constant bytes.
    Const(&'a [u8]),
    /// Variable number `usize` (template slot or sub-variable index).
    Var(usize),
}

/// One requirement on one variable: `kw[lo..hi]` must relate to the
/// variable's value according to `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Req {
    /// The variable index.
    pub var: usize,
    /// How the part must relate to the value.
    pub mode: Mode,
    /// Start of the keyword part.
    pub lo: usize,
    /// End (exclusive) of the keyword part.
    pub hi: usize,
}

/// A conjunction of requirements; the empty conjunction matches every row.
pub type Conj = Vec<Req>;

/// The enumeration result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// Every row matches (the keyword is contained in constants alone).
    All,
    /// The union over conjunctions of the intersection of their rows.
    Conjs(Vec<Conj>),
    /// Enumeration exceeded its budget; the caller must fall back to a scan.
    Overflow,
}

impl Plan {
    /// True if no row can match.
    pub fn is_empty(&self) -> bool {
        matches!(self, Plan::Conjs(c) if c.is_empty())
    }
}

/// Budget on enumerated conjunctions; beyond this the caller scans instead.
const MAX_CONJS: usize = 2048;

struct Ctx<'a> {
    segs: &'a [SegRef<'a>],
    kw: &'a [u8],
    budget: usize,
    overflow: bool,
}

impl<'a> Ctx<'a> {
    fn spend(&mut self, n: usize) -> bool {
        if self.budget < n {
            self.overflow = true;
            return false;
        }
        self.budget -= n;
        true
    }
}

/// Enumerates the possible matches of `kw` against `segs` under `mode`
/// (`Contains` = the keyword occurs anywhere in the concatenated value).
pub fn plan(segs: &[SegRef<'_>], kw: &[u8], mode: Mode) -> Plan {
    let mut ctx = Ctx {
        segs,
        kw,
        budget: MAX_CONJS,
        overflow: false,
    };
    let conjs = match mode {
        Mode::Contains => sub_m(&mut ctx),
        Mode::Prefix => prefix_m(&mut ctx, 0, 0),
        Mode::Suffix => suffix_m(&mut ctx, segs.len(), kw.len()),
        Mode::Exact => exact_m(&mut ctx, 0, 0),
    };
    if ctx.overflow {
        return Plan::Overflow;
    }
    // An empty conjunction subsumes everything.
    if conjs.iter().any(|c| c.is_empty()) {
        return Plan::All;
    }
    let mut dedup: Vec<Conj> = Vec::new();
    for mut c in conjs {
        c.sort_unstable();
        c.dedup();
        if !dedup.contains(&c) {
            dedup.push(c);
        }
    }
    Plan::Conjs(dedup)
}

/// `kw[k..]` must be a prefix of the value of `segs[s..]`.
fn prefix_m(ctx: &mut Ctx<'_>, s: usize, k: usize) -> Vec<Conj> {
    if k >= ctx.kw.len() {
        return vec![Vec::new()];
    }
    if !ctx.spend(1) {
        return Vec::new();
    }
    let kw = &ctx.kw[k..];
    match ctx.segs.get(s) {
        None => Vec::new(),
        Some(SegRef::Const(c)) => {
            if kw.len() <= c.len() {
                if c.starts_with(kw) {
                    vec![Vec::new()]
                } else {
                    Vec::new()
                }
            } else if kw.starts_with(c) {
                prefix_m(ctx, s + 1, k + c.len())
            } else {
                Vec::new()
            }
        }
        Some(SegRef::Var(v)) => {
            // The variable absorbs kw entirely (value starts with kw) ...
            let mut out = vec![vec![Req {
                var: *v,
                mode: Mode::Prefix,
                lo: k,
                hi: ctx.kw.len(),
            }]];
            // ... or exactly the first j bytes, the rest flowing onward.
            for j in 0..kw.len() {
                for mut conj in prefix_m(ctx, s + 1, k + j) {
                    conj.push(Req {
                        var: *v,
                        mode: Mode::Exact,
                        lo: k,
                        hi: k + j,
                    });
                    out.push(conj);
                    if !ctx.spend(1) {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// `kw[..k]` must be a suffix of the value of `segs[..s]`.
fn suffix_m(ctx: &mut Ctx<'_>, s: usize, k: usize) -> Vec<Conj> {
    if k == 0 {
        return vec![Vec::new()];
    }
    if !ctx.spend(1) {
        return Vec::new();
    }
    if s == 0 {
        return Vec::new();
    }
    let kw = &ctx.kw[..k];
    match ctx.segs[s - 1] {
        SegRef::Const(c) => {
            if kw.len() <= c.len() {
                if c.ends_with(kw) {
                    vec![Vec::new()]
                } else {
                    Vec::new()
                }
            } else if kw.ends_with(c) {
                suffix_m(ctx, s - 1, k - c.len())
            } else {
                Vec::new()
            }
        }
        SegRef::Var(v) => {
            let mut out = vec![vec![Req {
                var: v,
                mode: Mode::Suffix,
                lo: 0,
                hi: k,
            }]];
            for j in 0..kw.len() {
                // The variable's value is exactly the last j bytes of kw.
                for mut conj in suffix_m(ctx, s - 1, k - j) {
                    conj.push(Req {
                        var: v,
                        mode: Mode::Exact,
                        lo: k - j,
                        hi: k,
                    });
                    out.push(conj);
                    if !ctx.spend(1) {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// `kw[k..]` must equal the value of `segs[s..]` exactly.
fn exact_m(ctx: &mut Ctx<'_>, s: usize, k: usize) -> Vec<Conj> {
    if !ctx.spend(1) {
        return Vec::new();
    }
    let kw = &ctx.kw[k..];
    match ctx.segs.get(s) {
        None => {
            if kw.is_empty() {
                vec![Vec::new()]
            } else {
                Vec::new()
            }
        }
        Some(SegRef::Const(c)) => {
            if kw.starts_with(c) {
                exact_m(ctx, s + 1, k + c.len())
            } else {
                Vec::new()
            }
        }
        Some(SegRef::Var(v)) => {
            let mut out = Vec::new();
            for j in 0..=kw.len() {
                for mut conj in exact_m(ctx, s + 1, k + j) {
                    conj.push(Req {
                        var: *v,
                        mode: Mode::Exact,
                        lo: k,
                        hi: k + j,
                    });
                    out.push(conj);
                    if !ctx.spend(1) {
                        return out;
                    }
                }
            }
            out
        }
    }
}

/// `kw` occurs somewhere in the concatenated value.
fn sub_m(ctx: &mut Ctx<'_>) -> Vec<Conj> {
    let kw = ctx.kw;
    if kw.is_empty() {
        return vec![Vec::new()];
    }
    let mut out: Vec<Conj> = Vec::new();
    for i in 0..ctx.segs.len() {
        match ctx.segs[i] {
            SegRef::Var(v) => {
                // Case ①/⑤ of Figure 6: keyword fully inside this variable.
                out.push(vec![Req {
                    var: v,
                    mode: Mode::Contains,
                    lo: 0,
                    hi: kw.len(),
                }]);
                // Keyword starts inside the variable (a nonempty suffix of
                // the value) and continues into the following segments.
                for j in 1..kw.len() {
                    for mut conj in prefix_m(ctx, i + 1, j) {
                        conj.push(Req {
                            var: v,
                            mode: Mode::Suffix,
                            lo: 0,
                            hi: j,
                        });
                        out.push(conj);
                        if !ctx.spend(1) {
                            return out;
                        }
                    }
                }
            }
            SegRef::Const(c) => {
                // Body case ③: keyword fully inside the constant → every row.
                if strsearch::contains(c, kw) {
                    out.push(Vec::new());
                    continue;
                }
                // Head case ④ (and the boundary case o == start): a suffix
                // of the constant is a prefix of the keyword; the rest of the
                // keyword must prefix the following segments.
                for o in 0..c.len() {
                    let overlap = c.len() - o;
                    if overlap >= kw.len() {
                        continue; // Would be fully inside; handled above.
                    }
                    if c[o..] == kw[..overlap] {
                        out.extend(prefix_m(ctx, i + 1, overlap));
                    }
                    if ctx.overflow {
                        return out;
                    }
                }
            }
        }
        if ctx.overflow {
            return out;
        }
    }
    out
}

/// What the aggregate planner knows about a `top-K` target vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggTargetKind {
    /// The (template, slot) target does not exist in this archive.
    Missing,
    /// A plain vector (values only in its Capsule).
    Plain,
    /// A real vector (values reconstructed from pattern + sub-Capsules).
    Real,
    /// A nominal vector whose dictionary patterns are all constant-only:
    /// every value is renderable from metadata.
    NominalConst,
    /// A nominal vector with at least one variable-bearing pattern: values
    /// live in the dictionary Capsule.
    NominalMixed,
}

/// Predicts the cheapest storage layer that can answer `spec` (the
/// aggregate pushdown rule). Deterministic in its inputs, so
/// [`crate::stats::QueryStats::agg_layer`] can be drift-checked against
/// it: execution must never need a *more* expensive layer than planned.
///
/// `target` only matters for `top-K`; `filtered` is whether a line filter
/// restricts the aggregated rows (the filter's own Capsule touches are
/// accounted separately by the regular query stats).
pub fn plan_agg(
    spec: &crate::query::lang::AggSpec,
    target: AggTargetKind,
    filtered: bool,
) -> crate::stats::AggLayer {
    use crate::query::lang::AggSpec;
    use crate::stats::AggLayer;
    match spec {
        // Counts and line-number histograms come from group metadata
        // (row sets + line numbers) at any selectivity.
        AggSpec::Count | AggSpec::CountByTemplate | AggSpec::Histogram { .. } => {
            AggLayer::Metadata
        }
        AggSpec::TopK { .. } => match (target, filtered) {
            (AggTargetKind::Missing, _) => AggLayer::Metadata,
            (AggTargetKind::NominalConst, false) => AggLayer::Metadata,
            (AggTargetKind::NominalMixed, false) => AggLayer::Dictionary,
            (AggTargetKind::NominalConst | AggTargetKind::NominalMixed, true) => {
                AggLayer::CapsuleScan
            }
            (AggTargetKind::Plain | AggTargetKind::Real, _) => AggLayer::Reconstruct,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs_of(spec: &[&str]) -> Vec<SegRef<'static>> {
        // "c:xyz" = const, "v0" = var 0.
        spec.iter()
            .map(|s| {
                if let Some(rest) = s.strip_prefix("c:") {
                    SegRef::Const(Box::leak(rest.as_bytes().to_vec().into_boxed_slice()))
                } else {
                    SegRef::Var(s[1..].parse().unwrap())
                }
            })
            .collect()
    }

    /// Oracle: does `kw` relate to any concatenation of assignments drawn
    /// from `choices` per var under `mode`? Exhaustive over tiny alphabets.
    #[allow(clippy::needless_range_loop)] // `r` indexes the inner per-var lists
    fn oracle(segs: &[SegRef<'_>], choices: &[&[&[u8]]], kw: &[u8], mode: Mode) -> Vec<usize> {
        // Each "row" = one assignment per variable (same row index in each
        // variable's choice list).
        let rows = choices.first().map(|c| c.len()).unwrap_or(1);
        let mut hits = Vec::new();
        for r in 0..rows {
            let mut value = Vec::new();
            for seg in segs {
                match seg {
                    SegRef::Const(c) => value.extend_from_slice(c),
                    SegRef::Var(v) => value.extend_from_slice(choices[*v][r]),
                }
            }
            let ok = match mode {
                Mode::Contains => strsearch::contains(&value, kw),
                Mode::Prefix => value.starts_with(kw),
                Mode::Suffix => value.ends_with(kw),
                Mode::Exact => value == kw,
            };
            if ok {
                hits.push(r);
            }
        }
        hits
    }

    /// Evaluates a plan against the same assignment table.
    #[allow(clippy::needless_range_loop)] // `r` indexes the inner per-var lists
    fn eval_plan(plan: &Plan, choices: &[&[&[u8]]], kw: &[u8]) -> Vec<usize> {
        let rows = choices.first().map(|c| c.len()).unwrap_or(1);
        match plan {
            Plan::All => (0..rows).collect(),
            Plan::Overflow => panic!("unexpected overflow in test"),
            Plan::Conjs(conjs) => {
                let mut hits = Vec::new();
                for r in 0..rows {
                    let matched = conjs.iter().any(|conj| {
                        conj.iter().all(|req| {
                            let v = choices[req.var][r];
                            let part = &kw[req.lo..req.hi];
                            match req.mode {
                                Mode::Contains => strsearch::contains(v, part),
                                Mode::Prefix => v.starts_with(part),
                                Mode::Suffix => v.ends_with(part),
                                Mode::Exact => v == part,
                            }
                        })
                    });
                    if matched {
                        hits.push(r);
                    }
                }
                hits
            }
        }
    }

    fn check(spec: &[&str], choices: &[&[&[u8]]], kw: &[u8]) {
        let segs = segs_of(spec);
        for mode in [Mode::Contains, Mode::Prefix, Mode::Suffix, Mode::Exact] {
            let p = plan(&segs, kw, mode);
            assert_eq!(
                eval_plan(&p, choices, kw),
                oracle(&segs, choices, kw, mode),
                "kw={:?} mode={:?} plan={:?}",
                String::from_utf8_lossy(kw),
                mode,
                p
            );
        }
    }

    #[test]
    fn figure6_pattern() {
        // block_<sv1>F8<sv2>, stamps aside.
        let spec = ["c:block_", "v0", "c:F8", "v1"];
        let choices: &[&[&[u8]]] = &[
            &[b"1", b"8", b"2", b""],
            &[b"1F", b"F8FE", b"E", b"8F8F"],
        ];
        for kw in [
            &b"8F8F"[..],
            b"F8",
            b"block",
            b"ock_1",
            b"_8F8F8FE",
            b"k_2F8E",
            b"zz",
            b"block_1F81F",
            b"8",
        ] {
            check(&spec, choices, kw);
        }
    }

    #[test]
    fn keyword_inside_constant_matches_all() {
        let segs = segs_of(&["c:ERROR code=", "v0"]);
        assert_eq!(plan(&segs, b"RROR", Mode::Contains), Plan::All);
    }

    #[test]
    fn impossible_keyword_yields_empty() {
        let segs = segs_of(&["c:abc"]);
        let p = plan(&segs, b"xyz", Mode::Contains);
        assert!(p.is_empty(), "{p:?}");
    }

    #[test]
    fn spanning_keywords() {
        let spec = ["v0", "c:#", "v1"];
        let choices: &[&[&[u8]]] = &[
            &[b"SUC", b"ERR", b"ERR"],
            &[b"1604", b"1623", b"404"],
        ];
        for kw in [
            &b"SUC#1604"[..],
            b"ERR#16",
            b"C#1",
            b"#",
            b"ERR#404",
            b"R#40",
            b"404",
            b"SUC#1623",
        ] {
            check(&spec, choices, kw);
        }
    }

    #[test]
    fn adjacent_constants_and_edges() {
        let spec = ["c:[", "v0", "c:]", "c:-", "v1"];
        let choices: &[&[&[u8]]] = &[&[b"a", b""], &[b"x", b"yz"]];
        for kw in [&b"[a]-x"[..], b"[]-yz", b"]-", b"[", b"]-y", b"a]-"] {
            check(&spec, choices, kw);
        }
    }

    #[test]
    fn empty_variable_values() {
        let spec = ["c:a", "v0", "c:b"];
        let choices: &[&[&[u8]]] = &[&[b"", b"x", b"ab"]];
        for kw in [&b"ab"[..], b"axb", b"aabb", b"b", b"a"] {
            check(&spec, choices, kw);
        }
    }

    #[test]
    fn repetitive_constants_stress() {
        let spec = ["v0", "c:aa", "v1", "c:aa", "v2"];
        let choices: &[&[&[u8]]] = &[
            &[b"a", b"", b"aa"],
            &[b"a", b"aaa", b""],
            &[b"", b"a", b"aa"],
        ];
        for kw in [&b"aaaa"[..], b"aaa", b"aaaaa", b"aaaaaa", b"a"] {
            check(&spec, choices, kw);
        }
    }

    #[test]
    fn agg_pushdown_picks_the_cheapest_layer() {
        use crate::query::lang::AggSpec;
        use crate::stats::AggLayer;
        let topk = AggSpec::TopK { k: 3, template: 0, slot: 0 };
        for filtered in [false, true] {
            for spec in [
                AggSpec::Count,
                AggSpec::CountByTemplate,
                AggSpec::Histogram { bucket: 10 },
            ] {
                assert_eq!(
                    plan_agg(&spec, AggTargetKind::Missing, filtered),
                    AggLayer::Metadata
                );
            }
        }
        assert_eq!(
            plan_agg(&topk, AggTargetKind::NominalConst, false),
            AggLayer::Metadata
        );
        assert_eq!(
            plan_agg(&topk, AggTargetKind::NominalMixed, false),
            AggLayer::Dictionary
        );
        assert_eq!(
            plan_agg(&topk, AggTargetKind::NominalConst, true),
            AggLayer::CapsuleScan
        );
        assert_eq!(
            plan_agg(&topk, AggTargetKind::Plain, false),
            AggLayer::Reconstruct
        );
        assert_eq!(
            plan_agg(&topk, AggTargetKind::Real, true),
            AggLayer::Reconstruct
        );
        assert_eq!(
            plan_agg(&topk, AggTargetKind::Missing, true),
            AggLayer::Metadata
        );
    }

    #[test]
    fn overflow_on_pathological_patterns() {
        // Many variables and a long low-information keyword force overflow
        // rather than exponential blowup.
        let segs: Vec<SegRef<'_>> = (0..12).map(SegRef::Var).collect();
        let kw = vec![b'a'; 40];
        let p = plan(&segs, &kw, Mode::Exact);
        assert_eq!(p, Plan::Overflow);
    }
}
