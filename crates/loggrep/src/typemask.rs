//! The six-bit character-type mask of §2.2 / §4.3.
//!
//! Each bit records whether a value set contains characters from one of six
//! groups: `0-9`, `a-f`, `A-F`, `g-z`, `G-Z`, and "other". A keyword part
//! with mask `K` can only occur in a Capsule with mask `C` if `K & C == K`.

/// A six-bit character-type mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TypeMask(pub u8);

/// Bit for decimal digits `0-9`.
pub const BIT_DIGIT: u8 = 1 << 0;
/// Bit for lowercase hex letters `a-f`.
pub const BIT_HEX_LOWER: u8 = 1 << 1;
/// Bit for uppercase hex letters `A-F`.
pub const BIT_HEX_UPPER: u8 = 1 << 2;
/// Bit for lowercase non-hex letters `g-z`.
pub const BIT_ALPHA_LOWER: u8 = 1 << 3;
/// Bit for uppercase non-hex letters `G-Z`.
pub const BIT_ALPHA_UPPER: u8 = 1 << 4;
/// Bit for everything else (punctuation etc.).
pub const BIT_OTHER: u8 = 1 << 5;

impl TypeMask {
    /// The empty mask.
    pub const EMPTY: TypeMask = TypeMask(0);

    /// Classifies a single byte.
    #[inline]
    pub fn of_byte(b: u8) -> u8 {
        match b {
            b'0'..=b'9' => BIT_DIGIT,
            b'a'..=b'f' => BIT_HEX_LOWER,
            b'A'..=b'F' => BIT_HEX_UPPER,
            b'g'..=b'z' => BIT_ALPHA_LOWER,
            b'G'..=b'Z' => BIT_ALPHA_UPPER,
            _ => BIT_OTHER,
        }
    }

    /// Computes the mask of one value.
    pub fn of(value: &[u8]) -> TypeMask {
        let mut m = 0u8;
        for &b in value {
            m |= Self::of_byte(b);
            if m == 0b11_1111 {
                break;
            }
        }
        TypeMask(m)
    }

    /// Folds another value into this mask.
    pub fn absorb(&mut self, value: &[u8]) {
        self.0 |= Self::of(value).0;
    }

    /// Merges two masks.
    pub fn union(self, other: TypeMask) -> TypeMask {
        TypeMask(self.0 | other.0)
    }

    /// True if a string with mask `needle` could occur inside a value set
    /// with mask `self` (the `K & C == K` check of §4.3).
    #[inline]
    pub fn admits(self, needle: TypeMask) -> bool {
        needle.0 & self.0 == needle.0
    }

    /// Number of character groups present (the paper reports 3.1 per
    /// variable vector vs 1.5 per sub-variable vector).
    pub fn group_count(self) -> u32 {
        self.0.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §4.3: C1 holds only digits -> 000001b = 1.
        assert_eq!(TypeMask::of(b"182").0, 1);
        // C2 holds 0-9 and A-F -> 000101b = 5.
        assert_eq!(TypeMask::of(b"1F8FE").0, 5);
    }

    #[test]
    fn classification_boundaries() {
        assert_eq!(TypeMask::of_byte(b'0'), BIT_DIGIT);
        assert_eq!(TypeMask::of_byte(b'9'), BIT_DIGIT);
        assert_eq!(TypeMask::of_byte(b'a'), BIT_HEX_LOWER);
        assert_eq!(TypeMask::of_byte(b'f'), BIT_HEX_LOWER);
        assert_eq!(TypeMask::of_byte(b'g'), BIT_ALPHA_LOWER);
        assert_eq!(TypeMask::of_byte(b'z'), BIT_ALPHA_LOWER);
        assert_eq!(TypeMask::of_byte(b'A'), BIT_HEX_UPPER);
        assert_eq!(TypeMask::of_byte(b'F'), BIT_HEX_UPPER);
        assert_eq!(TypeMask::of_byte(b'G'), BIT_ALPHA_UPPER);
        assert_eq!(TypeMask::of_byte(b'Z'), BIT_ALPHA_UPPER);
        assert_eq!(TypeMask::of_byte(b'/'), BIT_OTHER);
        assert_eq!(TypeMask::of_byte(b'#'), BIT_OTHER);
    }

    #[test]
    fn admits_is_subset_check() {
        let capsule = TypeMask::of(b"1F8E"); // digits + A-F
        assert!(capsule.admits(TypeMask::of(b"8F")));
        assert!(capsule.admits(TypeMask::of(b"123")));
        assert!(!capsule.admits(TypeMask::of(b"8g")));
        assert!(!capsule.admits(TypeMask::of(b"8.")));
        assert!(capsule.admits(TypeMask::EMPTY));
    }

    #[test]
    fn absorb_and_union() {
        let mut m = TypeMask::EMPTY;
        m.absorb(b"12");
        m.absorb(b"ab");
        assert_eq!(m.0, BIT_DIGIT | BIT_HEX_LOWER);
        assert_eq!(m.union(TypeMask(BIT_OTHER)).0, m.0 | BIT_OTHER);
        assert_eq!(m.group_count(), 2);
    }
}
