//! Reproduction of **LogGrep** (Wei et al., EuroSys 2023): fast and cheap
//! cloud log storage by exploiting both static and runtime patterns.
//!
//! LogGrep compresses a log block in three layers:
//!
//! 1. a **static-pattern** parse (via [`logparse`]) splits entries into
//!    templates and *variable vectors* — all values of one printf `%s`;
//! 2. a **runtime-pattern** extractor (§4.1) finds the pattern *inside* each
//!    variable vector — `block_<*>F8<*>` — using a tree-expanding method for
//!    low-duplication ("real") vectors and a pattern-merging method for
//!    high-duplication ("nominal") vectors;
//! 3. the vector is decomposed into fine-grained **Capsules** (§4.2) — one
//!    per sub-variable, or a dictionary + index pair — each padded to a
//!    fixed width, stamped with a character-type mask and max length
//!    (§4.3), and compressed independently (LZMA-like codec by default).
//!
//! Queries (§5) match keywords against static patterns, runtime patterns and
//! Capsule stamps so that only the few Capsules that could contain a match
//! are ever decompressed; decompressed Capsules are scanned with fixed-width
//! Boyer-Moore matching.
//!
//! # Quick start
//!
//! ```
//! use loggrep::{LogGrep, LogGrepConfig};
//!
//! let raw = b"T134 bk.FF.13 read\nT169 state: SUC#1604\nT179 bk.C5.15 read\n";
//! let engine = LogGrep::new(LogGrepConfig::default());
//! let boxed = engine.compress(raw).unwrap();
//! let archive = loggrep::Archive::from_bytes(&boxed.to_bytes()).unwrap();
//! let hits = archive.query("read").unwrap();
//! assert_eq!(hits.lines.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod boxfile;
pub mod capsule;
pub mod config;
pub mod engine;
pub mod error;
pub mod extract;
pub mod pattern;
pub mod query;
pub mod rowset;
pub mod stats;
pub mod typemask;
pub mod vector;
pub mod wire;

pub use boxfile::{Archive, CapsuleBox};
pub use config::LogGrepConfig;
pub use engine::LogGrep;
pub use error::{Error, Result};
pub use query::explain::{AggDrift, Explanation, GroupDecision, PlanDrift};
pub use query::lang::{AggSpec, Query};
pub use query::{AggQueryResult, AggResult, QueryResult};
pub use stats::{AggLayer, ArchiveStats, QueryStats};
pub use typemask::TypeMask;

/// The pad byte used for fixed-width Capsule storage. NUL never occurs in
/// text logs, so padded values cannot collide with real content and
/// Boyer-Moore matches cannot straddle rows.
pub const PAD: u8 = 0;
