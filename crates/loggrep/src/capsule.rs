//! Capsules and Capsule stamps (§4.2, §4.3).
//!
//! A Capsule is LogGrep's unit of independent compression: a sub-variable
//! vector, an outlier vector, a dictionary vector, an index vector, or (for
//! Plain storage) a whole variable vector. Its *stamp* records the six-bit
//! character-type mask and the max value length, which the query engine uses
//! to skip decompression entirely (§5.1).

use crate::error::{Error, Result};
use crate::typemask::TypeMask;
use crate::wire::{Reader, Writer};
use crate::PAD;
use strsearch::fixed::{pad_values, FixedRows, Mode};
use strsearch::Kmp;

/// A Capsule stamp: type mask + maximum value length (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Six-bit character-type mask of all values.
    pub mask: TypeMask,
    /// Maximum (unpadded) value length in bytes.
    pub max_len: u32,
}

impl Stamp {
    /// Computes the stamp of a value set.
    pub fn of<'a, I: IntoIterator<Item = &'a [u8]>>(values: I) -> Stamp {
        let mut mask = TypeMask::EMPTY;
        let mut max_len = 0u32;
        for v in values {
            mask.absorb(v);
            max_len = max_len.max(v.len() as u32);
        }
        Stamp { mask, max_len }
    }

    /// The §5.1 filter: can a value-part equal to `needle` occur here?
    ///
    /// Checks `K & C == K` on type masks and `len(needle) <= max_len`.
    pub fn admits(&self, needle: &[u8]) -> bool {
        needle.len() as u32 <= self.max_len && self.mask.admits(TypeMask::of(needle))
    }

    /// Serializes the stamp.
    pub fn write(&self, w: &mut Writer) {
        w.put_u8(self.mask.0);
        w.put_u32(self.max_len);
    }

    /// Deserializes a stamp.
    pub fn read(r: &mut Reader<'_>) -> Result<Stamp> {
        Ok(Stamp {
            mask: TypeMask(r.get_u8()?),
            max_len: r.get_u32()?,
        })
    }
}

/// How a Capsule's values are laid out in its decompressed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Fixed-width rows padded with [`PAD`] (the paper's default, §5.2).
    Padded {
        /// Row width in bytes (>= 1).
        width: u32,
    },
    /// `\n`-separated variant-length values (the "w/o fixed" ablation).
    Delimited,
    /// Opaque bytes interpreted by the owning vector (dictionary capsules,
    /// whose regions have per-pattern widths).
    Raw,
}

/// Per-Capsule metadata stored in the CapsuleBox.
#[derive(Debug, Clone)]
pub struct CapsuleMeta {
    /// Value layout of the decompressed payload.
    pub layout: Layout,
    /// Number of values.
    pub rows: u32,
    /// The Capsule stamp.
    pub stamp: Stamp,
    /// Offset of the compressed payload in the blob section.
    pub offset: u64,
    /// Length of the compressed payload.
    pub clen: u64,
    /// Codec id (see [`codec_by_id`]).
    pub codec: u8,
}

/// Maps a codec id to a codec. Ids are stable on-disk values.
pub fn codec_by_id(id: u8) -> Result<Box<dyn codec::Codec>> {
    let name = match id {
        0 => "store",
        1 => "deflate",
        2 => "lzma-lite",
        3 => "fastlz",
        4 => "cm1",
        _ => return Err(Error::Corrupt(format!("unknown codec id {id}"))),
    };
    codec::by_name(name).ok_or_else(|| Error::Corrupt(format!("codec {name} unavailable")))
}

/// Maps a codec name to its on-disk id.
pub fn codec_id_by_name(name: &str) -> Result<u8> {
    match name {
        "store" => Ok(0),
        "deflate" | "gzip" => Ok(1),
        "lzma-lite" | "lzma" => Ok(2),
        "fastlz" | "zstd" => Ok(3),
        "cm1" | "ppm" => Ok(4),
        _ => Err(Error::Corrupt(format!("unknown codec name {name}"))),
    }
}

/// Builds a Capsule payload from values, returning `(payload, layout, stamp)`.
///
/// With `fixed_length`, values are padded to the max length (minimum width 1
/// so rows stay addressable); otherwise they are `\n`-separated.
pub fn build_payload<'a, I>(values: I, fixed_length: bool) -> (Vec<u8>, Layout, Stamp, u32)
where
    I: IntoIterator<Item = &'a [u8]> + Clone,
{
    let stamp = Stamp::of(values.clone());
    let rows = values.clone().into_iter().count() as u32;
    if fixed_length {
        let width = stamp.max_len.max(1);
        let payload = pad_values(values, width as usize, PAD);
        (payload, Layout::Padded { width }, stamp, rows)
    } else {
        let mut payload = Vec::new();
        for v in values {
            payload.extend_from_slice(v);
            payload.push(b'\n');
        }
        (payload, Layout::Delimited, stamp, rows)
    }
}

/// A decompressed Capsule payload ready for searching.
#[derive(Debug)]
pub enum CapsuleView<'a> {
    /// Fixed-width rows: O(1) addressing, Boyer-Moore scanning.
    Padded(FixedRows<'a>),
    /// Variant-length values: KMP scanning, O(n) addressing.
    Delimited {
        /// Value slices in row order.
        values: Vec<&'a [u8]>,
        /// The raw payload (for KMP record scans).
        payload: &'a [u8],
    },
    /// Opaque payload; the owning vector slices it (dictionary regions).
    Raw(&'a [u8]),
}

impl<'a> CapsuleView<'a> {
    /// Creates a view over a decompressed payload.
    pub fn new(payload: &'a [u8], meta: &CapsuleMeta) -> Result<Self> {
        match meta.layout {
            Layout::Padded { width } => {
                // Compare in u64 so width * rows cannot overflow usize.
                let expected = u64::from(width) * u64::from(meta.rows);
                if width == 0 || payload.len() as u64 != expected {
                    return Err(Error::Corrupt(format!(
                        "padded capsule size {} != width {} * rows {}",
                        payload.len(),
                        width,
                        meta.rows
                    )));
                }
                Ok(CapsuleView::Padded(FixedRows::new(payload, width as usize, PAD)))
            }
            Layout::Raw => Ok(CapsuleView::Raw(payload)),
            Layout::Delimited => {
                // Payload is value '\n' value '\n' ... (trailing newline),
                // so the declared row count can never exceed the payload
                // size — the bound caps the reservation for corrupt metas.
                let mut values: Vec<&[u8]> =
                    Vec::with_capacity((meta.rows as usize).min(payload.len()));
                match payload.split_last() {
                    None => {}
                    Some((&b'\n', body)) => values.extend(body.split(|&b| b == b'\n')),
                    Some(_) => {
                        return Err(Error::Corrupt("delimited capsule missing trailer".into()))
                    }
                }
                if values.len() != meta.rows as usize {
                    return Err(Error::Corrupt(format!(
                        "delimited capsule rows {} != declared {}",
                        values.len(),
                        meta.rows
                    )));
                }
                Ok(CapsuleView::Delimited { values, payload })
            }
        }
    }

    /// Number of rows (zero for [`CapsuleView::Raw`]; the owning vector
    /// tracks region row counts itself).
    pub fn rows(&self) -> usize {
        match self {
            CapsuleView::Padded(f) => f.rows(),
            CapsuleView::Delimited { values, .. } => values.len(),
            CapsuleView::Raw(_) => 0,
        }
    }

    /// The raw payload of a [`CapsuleView::Raw`] capsule.
    ///
    /// # Panics
    ///
    /// Panics if the view is not raw.
    pub fn raw(&self) -> &'a [u8] {
        match self {
            CapsuleView::Raw(p) => p,
            // lint:allow(no-panic-in-decode) — programming-error guard, not data-dependent: callers dispatch on the layout they validated
            _ => panic!("capsule is not raw"),
        }
    }

    /// The unpadded value of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range; callers bound `row` by
    /// [`CapsuleView::rows`] (row sources — search hits, row maps — are
    /// validated against the view before lookup).
    pub fn value(&self, row: usize) -> &'a [u8] {
        match self {
            CapsuleView::Padded(f) => f.value(row),
            // lint:allow(no-panic-in-decode) — contract documented above: callers bound row by rows()
            CapsuleView::Delimited { values, .. } => values[row],
            // lint:allow(no-panic-in-decode) — programming-error guard, not data-dependent: callers dispatch on the layout they validated
            CapsuleView::Raw(_) => panic!("raw capsules have no row addressing"),
        }
    }

    /// Rows whose values satisfy `mode` for `needle` (ascending, unique).
    ///
    /// Padded capsules use the Boyer-Moore fixed-width scan; delimited
    /// capsules use a KMP record scan plus per-record verification — the
    /// performance contrast of §5.2's "w/o fixed" ablation.
    pub fn find(&self, needle: &[u8], mode: Mode) -> Vec<u32> {
        match self {
            CapsuleView::Padded(f) => f.find(needle, mode),
            CapsuleView::Delimited { values, payload } => {
                if needle.is_empty() {
                    return (0..values.len() as u32)
                        .filter(|&r| {
                            mode != Mode::Exact
                                || values.get(r as usize).copied().unwrap_or_default().is_empty()
                        })
                        .collect();
                }
                // KMP over the whole payload narrows candidates; each
                // candidate record is verified for the anchored modes.
                // Record numbers are re-checked against the value table so
                // a count disagreement degrades to a miss, never a panic.
                let candidates = Kmp::new(needle).find_records(payload, b'\n');
                candidates
                    .into_iter()
                    .filter(|&r| {
                        values.get(r).copied().is_some_and(|v| match mode {
                            Mode::Contains => true,
                            Mode::Prefix => v.starts_with(needle),
                            Mode::Suffix => v.ends_with(needle),
                            Mode::Exact => v == needle,
                        })
                    })
                    .map(|r| r as u32)
                    .collect()
            }
            CapsuleView::Raw(_) => Vec::new(),
        }
    }

    /// Scans rows in a sub-range `[start, end)` (used for dictionary-region
    /// jumps, §5.2). Returned rows are absolute (re-based on `start`).
    pub fn find_in_rows(&self, needle: &[u8], mode: Mode, start: u32, end: u32) -> Vec<u32> {
        match self {
            CapsuleView::Padded(f) => {
                let slice = f.slice_rows(start as usize, end as usize);
                slice.find(needle, mode).into_iter().map(|r| r + start).collect()
            }
            CapsuleView::Delimited { values, .. } => (start..end.min(values.len() as u32))
                .filter(|&r| {
                    values.get(r as usize).copied().is_some_and(|v| match mode {
                        Mode::Contains => strsearch::contains(v, needle),
                        Mode::Prefix => v.starts_with(needle),
                        Mode::Suffix => v.ends_with(needle),
                        Mode::Exact => v == needle,
                    })
                })
                .collect(),
            CapsuleView::Raw(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_of_values() {
        let s = Stamp::of([&b"1F"[..], b"8F8F", b"2"]);
        assert_eq!(s.mask.0, 0b101);
        assert_eq!(s.max_len, 4);
    }

    #[test]
    fn stamp_admits() {
        let s = Stamp::of([&b"1F"[..], b"8F8F"]);
        assert!(s.admits(b"8F8"));
        assert!(!s.admits(b"8F8F8")); // Too long.
        assert!(!s.admits(b"8g")); // Wrong type.
    }
}
