//! Statistics reported by compression and queries, consumed by the
//! benchmark harness.
//!
//! Each struct is filled per-run by the pipeline (so concurrent runs stay
//! independent); the same events also feed the process-wide
//! [`telemetry`] registry, and the `from_snapshot` constructors rebuild
//! aggregate views of these structs from a registry [`telemetry::Snapshot`]
//! for exporters that only have the registry (e.g. `--trace`, the bench
//! harness's per-stage JSON).

use std::time::Duration;

/// Statistics of one compression run.
#[derive(Debug, Clone, Default)]
pub struct ArchiveStats {
    /// Original block size in bytes.
    pub raw_size: u64,
    /// Serialized CapsuleBox size in bytes.
    pub compressed_size: u64,
    /// Wall time of the compression.
    pub elapsed: Duration,
    /// Number of groups (static patterns) with at least one row.
    pub groups: usize,
    /// Variable vectors stored with a real runtime pattern.
    pub real_vectors: usize,
    /// Variable vectors stored as dictionary + index.
    pub nominal_vectors: usize,
    /// Variable vectors stored plain.
    pub plain_vectors: usize,
    /// Total Capsules.
    pub capsules: usize,
    /// Lines that fell into the catch-all template.
    pub catch_all_lines: u32,
}

impl ArchiveStats {
    /// Compression ratio (raw / compressed); 0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.compressed_size == 0 {
            0.0
        } else {
            self.raw_size as f64 / self.compressed_size as f64
        }
    }

    /// Compression speed in MB/s; 0 for zero-duration runs.
    pub fn speed_mb_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.raw_size as f64 / 1e6 / secs
        }
    }

    /// Aggregate view over every compression recorded in a telemetry
    /// snapshot (counters under `compress.*`, `extract.*`, `pack.*`, and
    /// the `compress` span). `compressed_size` is not tracked globally and
    /// stays 0; `groups` likewise (it is a per-box notion).
    pub fn from_snapshot(snap: &telemetry::Snapshot) -> Self {
        Self {
            raw_size: snap.counter("compress.bytes_raw"),
            compressed_size: 0,
            elapsed: Duration::from_nanos(
                snap.histogram("compress").map_or(0, |h| h.sum),
            ),
            groups: 0,
            real_vectors: snap.counter("extract.vectors.real") as usize,
            nominal_vectors: snap.counter("extract.vectors.nominal") as usize,
            plain_vectors: snap.counter("extract.vectors.plain") as usize,
            capsules: snap.counter("pack.capsules") as usize,
            catch_all_lines: snap.counter("parse.catch_all_lines") as u32,
        }
    }
}

/// The cheapest storage layer that answered an aggregate query, ordered
/// from cheapest to most expensive. Recorded in
/// [`QueryStats::agg_layer`] so the pushdown claims ("a
/// `count-by-template` never decompresses a Capsule") stay checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AggLayer {
    /// Answered from group metadata alone (templates, line numbers,
    /// per-value counts): zero Capsules decompressed.
    Metadata,
    /// Answered from a nominal vector's dictionary Capsule (at most one
    /// decompression); the index Capsule stays untouched.
    Dictionary,
    /// Scanned a vector's own Capsules (e.g. a filtered top-K reading
    /// the index Capsule) without full line reconstruction.
    CapsuleScan,
    /// Fell back to lazy per-row value reconstruction.
    Reconstruct,
}

impl AggLayer {
    /// Short lowercase name (telemetry label / JSON value).
    pub fn name(self) -> &'static str {
        match self {
            AggLayer::Metadata => "metadata",
            AggLayer::Dictionary => "dictionary",
            AggLayer::CapsuleScan => "capsule-scan",
            AggLayer::Reconstruct => "reconstruct",
        }
    }
}

impl std::fmt::Display for AggLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall time of the query.
    pub elapsed: Duration,
    /// Wall time spent in the Capsule-locating planner (§5.1); the rest of
    /// `elapsed` is execution (stamp filtering, decompression, scanning,
    /// reconstruction).
    pub plan_elapsed: Duration,
    /// Total Capsules in the archive (denominator for
    /// `capsules_decompressed`: the skip rate is `1 - decompressed/total`).
    pub capsules_total: u32,
    /// Capsules decompressed (the cost stamps/patterns avoid).
    pub capsules_decompressed: usize,
    /// Decompressed bytes.
    pub bytes_decompressed: u64,
    /// Capsule requirements rejected by stamps without decompression.
    pub stamp_rejections: usize,
    /// Groups whose static pattern pre-check failed (skipped entirely).
    pub groups_skipped: usize,
    /// Rows verified by full reconstruction (wildcard / overflow paths).
    pub rows_verified: usize,
    /// Whether the result came from the query cache.
    pub cache_hit: bool,
    /// For aggregate queries: the most expensive storage layer that
    /// contributed to the answer (`None` for line queries and for
    /// cache-served aggregates, which touch no layer at all).
    pub agg_layer: Option<AggLayer>,
}

impl QueryStats {
    /// Folds a worker's statistics into this one. Counters add up;
    /// `plan_elapsed` adds (it is per-call planner time, like in a serial
    /// run); `elapsed` and `capsules_total` are whole-query notions owned
    /// by the coordinating context and are left untouched.
    pub fn merge(&mut self, other: &QueryStats) {
        self.plan_elapsed += other.plan_elapsed;
        self.capsules_decompressed += other.capsules_decompressed;
        self.bytes_decompressed += other.bytes_decompressed;
        self.stamp_rejections += other.stamp_rejections;
        self.groups_skipped += other.groups_skipped;
        self.rows_verified += other.rows_verified;
        self.cache_hit |= other.cache_hit;
        self.agg_layer = self.agg_layer.max(other.agg_layer);
    }

    /// Records that `layer` contributed to an aggregate answer; the stats
    /// keep the most expensive layer seen.
    pub fn note_agg_layer(&mut self, layer: AggLayer) {
        self.agg_layer = Some(self.agg_layer.map_or(layer, |l| l.max(layer)));
    }

    /// The non-planning part of `elapsed` (saturating).
    pub fn execute_elapsed(&self) -> Duration {
        self.elapsed.saturating_sub(self.plan_elapsed)
    }

    /// Fraction of the archive's Capsules this query decompressed
    /// (0 when the archive is empty).
    pub fn decompress_fraction(&self) -> f64 {
        if self.capsules_total == 0 {
            0.0
        } else {
            self.capsules_decompressed as f64 / self.capsules_total as f64
        }
    }

    /// Aggregate view over every query recorded in a telemetry snapshot
    /// (counters under `query.*`, spans under the `query` path).
    /// `capsules_total` and `cache_hit` are per-query notions: the view
    /// reports 0 / whether any hit occurred.
    pub fn from_snapshot(snap: &telemetry::Snapshot) -> Self {
        let span_sum = |name: &str| snap.histogram(name).map_or(0, |h| h.sum);
        Self {
            elapsed: Duration::from_nanos(span_sum("query")),
            plan_elapsed: Duration::from_nanos(
                snap.histograms_under("query")
                    .filter(|(n, _)| n.ends_with("/plan"))
                    .map(|(_, h)| h.sum)
                    .sum(),
            ),
            capsules_total: 0,
            capsules_decompressed: snap.counter("query.capsules_decompressed") as usize,
            bytes_decompressed: snap.counter("query.bytes_decompressed"),
            stamp_rejections: snap.counter("query.stamp_rejections") as usize,
            groups_skipped: snap.counter("query.groups_skipped") as usize,
            rows_verified: snap.counter("query.rows_verified") as usize,
            cache_hit: snap.counter("query.cache.hits") > 0,
            agg_layer: [
                AggLayer::Reconstruct,
                AggLayer::CapsuleScan,
                AggLayer::Dictionary,
                AggLayer::Metadata,
            ]
            .into_iter()
            .find(|l| snap.counter(&format!("query.agg.layer.{}", l.name())) > 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_speed() {
        let s = ArchiveStats {
            raw_size: 1_000_000,
            compressed_size: 100_000,
            elapsed: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((s.ratio() - 10.0).abs() < 1e-9);
        assert!((s.speed_mb_s() - 2.0).abs() < 1e-9);
        assert_eq!(ArchiveStats::default().ratio(), 0.0);
        assert_eq!(ArchiveStats::default().speed_mb_s(), 0.0);
    }

    #[test]
    fn plan_execute_split() {
        let s = QueryStats {
            elapsed: Duration::from_micros(100),
            plan_elapsed: Duration::from_micros(30),
            ..Default::default()
        };
        assert_eq!(s.execute_elapsed(), Duration::from_micros(70));
        // Saturates rather than panicking if clocks disagree.
        let odd = QueryStats {
            elapsed: Duration::from_micros(10),
            plan_elapsed: Duration::from_micros(30),
            ..Default::default()
        };
        assert_eq!(odd.execute_elapsed(), Duration::ZERO);
    }

    #[test]
    fn merge_adds_worker_counters() {
        let mut main = QueryStats {
            elapsed: Duration::from_micros(500),
            capsules_total: 10,
            capsules_decompressed: 1,
            ..Default::default()
        };
        let worker = QueryStats {
            plan_elapsed: Duration::from_micros(5),
            capsules_decompressed: 2,
            bytes_decompressed: 64,
            stamp_rejections: 3,
            rows_verified: 4,
            ..Default::default()
        };
        main.merge(&worker);
        assert_eq!(main.capsules_decompressed, 3);
        assert_eq!(main.bytes_decompressed, 64);
        assert_eq!(main.stamp_rejections, 3);
        assert_eq!(main.rows_verified, 4);
        assert_eq!(main.plan_elapsed, Duration::from_micros(5));
        // Whole-query fields untouched.
        assert_eq!(main.elapsed, Duration::from_micros(500));
        assert_eq!(main.capsules_total, 10);
    }

    #[test]
    fn agg_layer_orders_and_merges_to_the_most_expensive() {
        assert!(AggLayer::Metadata < AggLayer::Dictionary);
        assert!(AggLayer::Dictionary < AggLayer::CapsuleScan);
        assert!(AggLayer::CapsuleScan < AggLayer::Reconstruct);
        let mut s = QueryStats::default();
        assert_eq!(s.agg_layer, None);
        s.note_agg_layer(AggLayer::Metadata);
        assert_eq!(s.agg_layer, Some(AggLayer::Metadata));
        s.note_agg_layer(AggLayer::Reconstruct);
        s.note_agg_layer(AggLayer::Dictionary);
        assert_eq!(s.agg_layer, Some(AggLayer::Reconstruct));
        // merge() keeps the max across workers, including None sides.
        let mut main = QueryStats::default();
        main.merge(&s);
        assert_eq!(main.agg_layer, Some(AggLayer::Reconstruct));
        let mut quiet = QueryStats::default();
        quiet.merge(&QueryStats::default());
        assert_eq!(quiet.agg_layer, None);
    }

    #[test]
    fn decompress_fraction() {
        let s = QueryStats {
            capsules_total: 8,
            capsules_decompressed: 2,
            ..Default::default()
        };
        assert!((s.decompress_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(QueryStats::default().decompress_fraction(), 0.0);
    }

    #[test]
    fn views_from_snapshot() {
        use telemetry::{HistogramSnapshot, Snapshot};
        let hist = |sum: u64| HistogramSnapshot {
            count: 1,
            sum,
            min: sum,
            max: sum,
            buckets: vec![0; 65],
        };
        let snap = Snapshot {
            counters: vec![
                ("compress.bytes_raw".into(), 4096),
                ("extract.vectors.real".into(), 3),
                ("pack.capsules".into(), 9),
                ("query.capsules_decompressed".into(), 5),
                ("query.stamp_rejections".into(), 2),
                ("query.cache.hits".into(), 1),
            ],
            gauges: vec![],
            histograms: vec![
                ("compress".into(), hist(1_000_000)),
                ("query".into(), hist(500_000)),
                ("query/plan".into(), hist(60_000)),
                ("query/reconstruct/plan".into(), hist(40_000)),
            ],
        };
        let a = ArchiveStats::from_snapshot(&snap);
        assert_eq!(a.raw_size, 4096);
        assert_eq!(a.real_vectors, 3);
        assert_eq!(a.capsules, 9);
        assert_eq!(a.elapsed, Duration::from_nanos(1_000_000));
        let q = QueryStats::from_snapshot(&snap);
        assert_eq!(q.elapsed, Duration::from_nanos(500_000));
        assert_eq!(q.plan_elapsed, Duration::from_nanos(100_000));
        assert_eq!(q.capsules_decompressed, 5);
        assert_eq!(q.stamp_rejections, 2);
        assert!(q.cache_hit);
    }
}
