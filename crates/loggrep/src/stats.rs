//! Statistics reported by compression and queries, consumed by the
//! benchmark harness.

use std::time::Duration;

/// Statistics of one compression run.
#[derive(Debug, Clone, Default)]
pub struct ArchiveStats {
    /// Original block size in bytes.
    pub raw_size: u64,
    /// Serialized CapsuleBox size in bytes.
    pub compressed_size: u64,
    /// Wall time of the compression.
    pub elapsed: Duration,
    /// Number of groups (static patterns) with at least one row.
    pub groups: usize,
    /// Variable vectors stored with a real runtime pattern.
    pub real_vectors: usize,
    /// Variable vectors stored as dictionary + index.
    pub nominal_vectors: usize,
    /// Variable vectors stored plain.
    pub plain_vectors: usize,
    /// Total Capsules.
    pub capsules: usize,
    /// Lines that fell into the catch-all template.
    pub catch_all_lines: u32,
}

impl ArchiveStats {
    /// Compression ratio (raw / compressed); 0 when empty.
    pub fn ratio(&self) -> f64 {
        if self.compressed_size == 0 {
            0.0
        } else {
            self.raw_size as f64 / self.compressed_size as f64
        }
    }

    /// Compression speed in MB/s; 0 for zero-duration runs.
    pub fn speed_mb_s(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.raw_size as f64 / 1e6 / secs
        }
    }
}

/// Statistics of one query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Wall time of the query.
    pub elapsed: Duration,
    /// Capsules decompressed (the cost stamps/patterns avoid).
    pub capsules_decompressed: usize,
    /// Decompressed bytes.
    pub bytes_decompressed: u64,
    /// Capsule requirements rejected by stamps without decompression.
    pub stamp_rejections: usize,
    /// Groups whose static pattern pre-check failed (skipped entirely).
    pub groups_skipped: usize,
    /// Rows verified by full reconstruction (wildcard / overflow paths).
    pub rows_verified: usize,
    /// Whether the result came from the query cache.
    pub cache_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_speed() {
        let s = ArchiveStats {
            raw_size: 1_000_000,
            compressed_size: 100_000,
            elapsed: Duration::from_millis(500),
            ..Default::default()
        };
        assert!((s.ratio() - 10.0).abs() < 1e-9);
        assert!((s.speed_mb_s() - 2.0).abs() < 1e-9);
        assert_eq!(ArchiveStats::default().ratio(), 0.0);
        assert_eq!(ArchiveStats::default().speed_mb_s(), 0.0);
    }
}
