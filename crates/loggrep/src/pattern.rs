//! Runtime patterns (§2.3, §4.1): the pattern *inside* a variable vector,
//! such as `block_<*>F8<*>` — constant byte runs interleaved with
//! sub-variables.

use crate::capsule::Stamp;
use crate::error::Result;
use crate::wire::{Reader, Writer};

/// One segment of a runtime pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Constant bytes shared by every matching value.
    Const(Vec<u8>),
    /// The `i`-th sub-variable (left to right, 0-based).
    Var(usize),
}

/// A runtime pattern: segments plus a stamp per sub-variable.
///
/// Invariants: `Var` indices are `0..sub_stamps.len()` in left-to-right
/// order; two `Var` segments are never adjacent; `Const` segments are
/// non-empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimePattern {
    /// The segments, left to right.
    pub segments: Vec<Segment>,
    /// Stamp (type mask + max length) of each sub-variable vector.
    pub sub_stamps: Vec<Stamp>,
}

impl RuntimePattern {
    /// Number of sub-variables.
    pub fn sub_vars(&self) -> usize {
        self.sub_stamps.len()
    }

    /// Attempts to decompose `value` according to this pattern, returning
    /// the sub-variable slices in order, or `None` (→ outlier).
    ///
    /// Uses backtracking over the positions of constant segments so that a
    /// decomposable value is never misclassified as an outlier; successful
    /// decompositions always reconstruct the value exactly.
    pub fn decompose<'a>(&self, value: &'a [u8]) -> Option<Vec<&'a [u8]>> {
        let mut captures: Vec<&'a [u8]> = vec![b""; self.sub_vars()];
        if self.match_segments(value, 0, &mut captures) {
            Some(captures)
        } else {
            None
        }
    }

    fn match_segments<'a>(
        &self,
        rest: &'a [u8],
        seg_idx: usize,
        captures: &mut Vec<&'a [u8]>,
    ) -> bool {
        match self.segments.get(seg_idx) {
            None => rest.is_empty(),
            Some(Segment::Const(c)) => match rest.strip_prefix(c.as_slice()) {
                Some(tail) => self.match_segments(tail, seg_idx + 1, captures),
                None => false,
            },
            Some(Segment::Var(v)) => {
                // Find where the variable ends: either at the next constant
                // (try every occurrence, backtracking) or at the end.
                match self.segments.get(seg_idx + 1) {
                    None => match captures.get_mut(*v) {
                        Some(slot) => {
                            *slot = rest;
                            true
                        }
                        None => false,
                    },
                    Some(Segment::Const(c)) => {
                        let mut from = 0usize;
                        while let Some(at) = find_from(rest, c, from) {
                            let head = rest.get(..at).unwrap_or_default();
                            let tail = rest.get(at + c.len()..).unwrap_or_default();
                            match captures.get_mut(*v) {
                                Some(slot) => *slot = head,
                                None => return false,
                            }
                            if self.match_segments(tail, seg_idx + 2, captures) {
                                return true;
                            }
                            from = at + 1;
                        }
                        false
                    }
                    // Rejected by `validate()` at parse time; a hand-built
                    // pattern violating the invariant simply never matches.
                    Some(Segment::Var(_)) => false,
                }
            }
        }
    }

    /// Rebuilds a value from sub-variable slices.
    ///
    /// Indices out of range for `subs` (impossible for patterns that
    /// passed [`RuntimePattern::read`] validation) render as empty.
    pub fn render(&self, subs: &[&[u8]]) -> Vec<u8> {
        let mut out = Vec::new();
        self.render_into(subs, &mut out);
        out
    }

    /// Rebuilds a value into a caller-provided buffer (cleared first),
    /// reusing its capacity — the allocation-free form reconstruction loops
    /// use. Accepts any byte-slice-like values so scratch `Vec<u8>` buffers
    /// work directly; out-of-range indices render as empty, as in
    /// [`RuntimePattern::render`].
    pub fn render_into<V: AsRef<[u8]>>(&self, subs: &[V], out: &mut Vec<u8>) {
        debug_assert_eq!(subs.len(), self.sub_vars(), "sub-variable count mismatch");
        out.clear();
        for seg in &self.segments {
            match seg {
                Segment::Const(c) => out.extend_from_slice(c),
                Segment::Var(v) => {
                    out.extend_from_slice(subs.get(*v).map(AsRef::as_ref).unwrap_or_default())
                }
            }
        }
    }

    /// Human-readable form, e.g. `block_<typ=1,len=1>F8<typ=5,len=4>`.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for seg in &self.segments {
            match seg {
                Segment::Const(c) => out.push_str(&String::from_utf8_lossy(c)),
                Segment::Var(v) => {
                    let (typ, len) = self
                        .sub_stamps
                        .get(*v)
                        .map_or((0, 0), |s| (s.mask.0, s.max_len));
                    out.push_str(&format!("<typ={typ},len={len}>"));
                }
            }
        }
        out
    }

    /// Serializes the pattern.
    pub fn write(&self, w: &mut Writer) {
        w.put_usize(self.segments.len());
        for seg in &self.segments {
            match seg {
                Segment::Const(c) => {
                    w.put_u8(0);
                    w.put_bytes(c);
                }
                Segment::Var(v) => {
                    w.put_u8(1);
                    w.put_usize(*v);
                }
            }
        }
        w.put_usize(self.sub_stamps.len());
        for s in &self.sub_stamps {
            s.write(w);
        }
    }

    /// Deserializes a pattern and checks the structural invariants, so
    /// every pattern obtained from archive bytes is safe to match,
    /// render, and display without bounds surprises.
    pub fn read(r: &mut Reader<'_>) -> Result<Self> {
        // Every segment occupies at least two bytes on the wire.
        let nsegs = r.get_len(r.remaining())?;
        let mut segments = Vec::with_capacity(nsegs.min(1024));
        for _ in 0..nsegs {
            segments.push(match r.get_u8()? {
                0 => Segment::Const(r.get_bytes()?.to_vec()),
                1 => Segment::Var(r.get_usize()?),
                t => {
                    return Err(crate::error::Error::Corrupt(format!(
                        "bad segment tag {t}"
                    )))
                }
            });
        }
        let nstamps = r.get_len(r.remaining())?;
        let mut sub_stamps = Vec::with_capacity(nstamps.min(1024));
        for _ in 0..nstamps {
            sub_stamps.push(Stamp::read(r)?);
        }
        let pattern = Self {
            segments,
            sub_stamps,
        };
        pattern.validate()?;
        Ok(pattern)
    }

    /// Enforces the type-level invariants on deserialized patterns:
    /// `Var` indices sequential left-to-right, no adjacent `Var`s, no
    /// empty `Const`, and exactly one stamp per sub-variable.
    fn validate(&self) -> Result<()> {
        let corrupt = |what: &str| crate::error::Error::Corrupt(format!("runtime pattern: {what}"));
        let mut next_var = 0usize;
        let mut prev_was_var = false;
        for seg in &self.segments {
            match seg {
                Segment::Const(c) => {
                    if c.is_empty() {
                        return Err(corrupt("empty constant segment"));
                    }
                    prev_was_var = false;
                }
                Segment::Var(v) => {
                    if prev_was_var {
                        return Err(corrupt("adjacent sub-variables"));
                    }
                    if *v != next_var {
                        return Err(corrupt("non-sequential sub-variable index"));
                    }
                    next_var += 1;
                    prev_was_var = true;
                }
            }
        }
        if next_var != self.sub_stamps.len() {
            return Err(corrupt("sub-variable/stamp count mismatch"));
        }
        Ok(())
    }
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    strsearch::find(haystack.get(from..)?, needle).map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::typemask::TypeMask;

    fn pat(segs: Vec<Segment>, nvars: usize) -> RuntimePattern {
        RuntimePattern {
            segments: segs,
            sub_stamps: vec![
                Stamp {
                    mask: TypeMask(0b111111),
                    max_len: 64,
                };
                nvars
            ],
        }
    }

    #[test]
    fn figure4_pattern_decomposes() {
        // block_<sv1>F8<sv2>
        let p = pat(
            vec![
                Segment::Const(b"block_".to_vec()),
                Segment::Var(0),
                Segment::Const(b"F8".to_vec()),
                Segment::Var(1),
            ],
            2,
        );
        assert_eq!(
            p.decompose(b"block_1F81F").unwrap(),
            vec![&b"1"[..], b"1F"]
        );
        assert_eq!(
            p.decompose(b"block_8F8F8FE").unwrap(),
            vec![&b"8"[..], b"F8FE"]
        );
        assert_eq!(p.decompose(b"block_2F8E").unwrap(), vec![&b"2"[..], b"E"]);
        assert!(p.decompose(b"Failed").is_none());
    }

    #[test]
    fn backtracking_finds_valid_split() {
        // <v>ab : value "xabab" needs the var to take "xab", not "x".
        let p = pat(
            vec![Segment::Var(0), Segment::Const(b"ab".to_vec())],
            1,
        );
        assert_eq!(p.decompose(b"xabab").unwrap(), vec![&b"xab"[..]]);
        assert_eq!(p.decompose(b"ab").unwrap(), vec![&b""[..]]);
        assert!(p.decompose(b"xab x").is_none());
    }

    #[test]
    fn render_inverts_decompose() {
        let p = pat(
            vec![
                Segment::Const(b"/tmp/1FF8".to_vec()),
                Segment::Var(0),
                Segment::Const(b".log".to_vec()),
            ],
            1,
        );
        for v in [&b"/tmp/1FF8abcd.log"[..], b"/tmp/1FF8.log"] {
            let subs = p.decompose(v).unwrap();
            assert_eq!(p.render(&subs), v);
        }
    }

    #[test]
    fn anchoring_is_exact() {
        let p = pat(vec![Segment::Const(b"abc".to_vec())], 0);
        assert!(p.decompose(b"abc").is_some());
        assert!(p.decompose(b"abcd").is_none());
        assert!(p.decompose(b"xabc").is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let p = pat(
            vec![
                Segment::Const(b"a_".to_vec()),
                Segment::Var(0),
                Segment::Const(b"-".to_vec()),
                Segment::Var(1),
            ],
            2,
        );
        let mut w = Writer::new();
        p.write(&mut w);
        let buf = w.into_bytes();
        let got = RuntimePattern::read(&mut Reader::new(&buf)).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn corrupt_patterns_rejected_at_read() {
        let write = |p: &RuntimePattern| {
            let mut w = Writer::new();
            p.write(&mut w);
            w.into_bytes()
        };
        // Out-of-range / non-sequential Var index.
        let bad_idx = RuntimePattern {
            segments: vec![Segment::Var(3)],
            sub_stamps: vec![],
        };
        assert!(RuntimePattern::read(&mut Reader::new(&write(&bad_idx))).is_err());
        // Adjacent sub-variables.
        let adjacent = RuntimePattern {
            segments: vec![Segment::Var(0), Segment::Var(1)],
            sub_stamps: vec![
                Stamp { mask: TypeMask(1), max_len: 1 },
                Stamp { mask: TypeMask(1), max_len: 1 },
            ],
        };
        assert!(RuntimePattern::read(&mut Reader::new(&write(&adjacent))).is_err());
        // Empty constant segment.
        let empty_const = RuntimePattern {
            segments: vec![Segment::Const(Vec::new())],
            sub_stamps: vec![],
        };
        assert!(RuntimePattern::read(&mut Reader::new(&write(&empty_const))).is_err());
        // Stamp count mismatch.
        let missing_stamp = RuntimePattern {
            segments: vec![Segment::Var(0)],
            sub_stamps: vec![],
        };
        assert!(RuntimePattern::read(&mut Reader::new(&write(&missing_stamp))).is_err());
    }

    #[test]
    fn display_shows_stamps() {
        let p = RuntimePattern {
            segments: vec![Segment::Const(b"block_".to_vec()), Segment::Var(0)],
            sub_stamps: vec![Stamp {
                mask: TypeMask(1),
                max_len: 3,
            }],
        };
        assert_eq!(p.display(), "block_<typ=1,len=3>");
    }
}
