//! Encoded variable vectors: how one template slot's values are stored as
//! Capsules (§4.2).

use crate::error::{Error, Result};
use crate::extract::DictPattern;
use crate::pattern::RuntimePattern;
use crate::wire::{Reader, Writer};

/// Capsule ids are indices into the CapsuleBox capsule table.
pub type CapsuleId = u32;

/// The storage form of one variable vector.
#[derive(Debug, Clone)]
pub enum VectorMeta {
    /// One Capsule holding every value (LogGrep-SP and fallbacks).
    Plain {
        /// The value Capsule.
        capsule: CapsuleId,
    },
    /// A real vector: one runtime pattern, one Capsule per sub-variable,
    /// plus an outlier Capsule for values the pattern did not match.
    Real {
        /// The extracted runtime pattern (with per-sub-variable stamps).
        pattern: RuntimePattern,
        /// Sub-variable Capsules, indexed by sub-variable number.
        sub_caps: Vec<CapsuleId>,
        /// The outlier Capsule (may have zero rows).
        outlier_cap: CapsuleId,
        /// Vector-local rows stored in the outlier Capsule, ascending.
        outlier_rows: Vec<u32>,
    },
    /// A nominal vector: dictionary Capsule (values grouped by pattern) +
    /// index Capsule (fixed-width decimal indices).
    Nominal {
        /// Merged dictionary patterns, in region order.
        patterns: Vec<DictPattern>,
        /// The dictionary Capsule.
        dict_cap: CapsuleId,
        /// The index Capsule.
        index_cap: CapsuleId,
        /// Digits per stored index (`IdxLen`).
        idx_len: u32,
        /// Total number of dictionary values.
        dict_len: u32,
        /// Occurrences of each dictionary value in the index vector,
        /// indexed by dictionary index. Sums to the group's row count, so
        /// aggregate verbs can count values without touching either
        /// Capsule.
        value_counts: Vec<u32>,
    },
}

impl VectorMeta {
    /// For a real vector, builds the mapping pattern-row → vector row (the
    /// rows not stored in the outlier Capsule, ascending).
    pub fn pattern_row_map(outlier_rows: &[u32], total_rows: u32) -> Vec<u32> {
        let mut map = Vec::with_capacity((total_rows as usize).saturating_sub(outlier_rows.len()));
        let mut outliers = outlier_rows.iter().copied().peekable();
        for row in 0..total_rows {
            if outliers.peek() == Some(&row) {
                outliers.next();
            } else {
                map.push(row);
            }
        }
        map
    }

    /// For a nominal vector, the dictionary regions as
    /// `(byte_offset, first_dict_index, count, width)`, in order — the §5.2
    /// direct-jump computation `Σ countᵢ × lenᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] if the accumulated offsets or indices
    /// overflow (possible only for corrupt metadata, since legitimate
    /// region sizes are bounded by the decompressed dictionary payload).
    pub fn dict_regions(patterns: &[DictPattern]) -> Result<Vec<DictRegion>> {
        let overflow = || Error::Corrupt("dictionary region overflow".into());
        let mut out = Vec::with_capacity(patterns.len());
        let mut offset = 0usize;
        let mut first = 0u32;
        for p in patterns {
            out.push(DictRegion {
                byte_offset: offset,
                first_index: first,
                count: p.count,
                width: p.max_len,
            });
            let span = usize::try_from(u64::from(p.count) * u64::from(p.max_len))
                .map_err(|_| overflow())?;
            offset = offset.checked_add(span).ok_or_else(overflow)?;
            first = first.checked_add(p.count).ok_or_else(overflow)?;
        }
        Ok(out)
    }

    /// All Capsule ids this vector references.
    pub fn capsules(&self) -> Vec<CapsuleId> {
        match self {
            VectorMeta::Plain { capsule } => vec![*capsule],
            VectorMeta::Real {
                sub_caps,
                outlier_cap,
                ..
            } => {
                let mut v = sub_caps.clone();
                v.push(*outlier_cap);
                v
            }
            VectorMeta::Nominal {
                dict_cap,
                index_cap,
                ..
            } => vec![*dict_cap, *index_cap],
        }
    }

    /// Serializes the vector metadata.
    pub fn write(&self, w: &mut Writer) {
        match self {
            VectorMeta::Plain { capsule } => {
                w.put_u8(0);
                w.put_u32(*capsule);
            }
            VectorMeta::Real {
                pattern,
                sub_caps,
                outlier_cap,
                outlier_rows,
            } => {
                w.put_u8(1);
                pattern.write(w);
                w.put_usize(sub_caps.len());
                for c in sub_caps {
                    w.put_u32(*c);
                }
                w.put_u32(*outlier_cap);
                w.put_ascending_u32s(outlier_rows);
            }
            VectorMeta::Nominal {
                patterns,
                dict_cap,
                index_cap,
                idx_len,
                dict_len,
                value_counts,
            } => {
                w.put_u8(2);
                w.put_usize(patterns.len());
                for p in patterns {
                    p.pattern.write(w);
                    w.put_u32(p.count);
                    w.put_u32(p.max_len);
                }
                w.put_u32(*dict_cap);
                w.put_u32(*index_cap);
                w.put_u32(*idx_len);
                w.put_u32(*dict_len);
                for c in value_counts {
                    w.put_u32(*c);
                }
            }
        }
    }

    /// Deserializes vector metadata.
    pub fn read(r: &mut Reader<'_>) -> Result<Self> {
        match r.get_u8()? {
            0 => Ok(VectorMeta::Plain {
                capsule: r.get_u32()?,
            }),
            1 => {
                let pattern = RuntimePattern::read(r)?;
                let n = r.get_len(r.remaining())?;
                let mut sub_caps = Vec::with_capacity(n);
                for _ in 0..n {
                    sub_caps.push(r.get_u32()?);
                }
                let outlier_cap = r.get_u32()?;
                let outlier_rows = r.get_ascending_u32s()?;
                if pattern.sub_vars() != sub_caps.len() {
                    return Err(Error::Corrupt("sub-variable/capsule mismatch".into()));
                }
                Ok(VectorMeta::Real {
                    pattern,
                    sub_caps,
                    outlier_cap,
                    outlier_rows,
                })
            }
            2 => {
                let n = r.get_len(r.remaining())?;
                let mut patterns = Vec::with_capacity(n);
                for _ in 0..n {
                    let pattern = RuntimePattern::read(r)?;
                    let count = r.get_u32()?;
                    let max_len = r.get_u32()?;
                    patterns.push(DictPattern {
                        pattern,
                        count,
                        max_len,
                    });
                }
                let dict_cap = r.get_u32()?;
                let index_cap = r.get_u32()?;
                let idx_len = r.get_u32()?;
                let dict_len = r.get_u32()?;
                // One count varint per dictionary value follows; each
                // occupies at least one byte, so `remaining` bounds the
                // loop before anything is read.
                if dict_len as usize > r.remaining() {
                    return Err(Error::Corrupt("dictionary value-count truncated".into()));
                }
                let mut value_counts = Vec::new();
                for _ in 0..dict_len {
                    value_counts.push(r.get_u32()?);
                }
                Ok(VectorMeta::Nominal {
                    patterns,
                    dict_cap,
                    index_cap,
                    idx_len,
                    dict_len,
                    value_counts,
                })
            }
            t => Err(Error::Corrupt(format!("bad vector tag {t}"))),
        }
    }
}

/// One dictionary region (all values of one merged pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DictRegion {
    /// Byte offset of the region in the dictionary payload.
    pub byte_offset: usize,
    /// Dictionary index of the region's first value.
    pub first_index: u32,
    /// Number of values in the region.
    pub count: u32,
    /// Padded width of each value in the region.
    pub width: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::Stamp;
    use crate::pattern::Segment;
    use crate::typemask::TypeMask;

    fn sample_real() -> VectorMeta {
        VectorMeta::Real {
            pattern: RuntimePattern {
                segments: vec![
                    Segment::Const(b"blk_".to_vec()),
                    Segment::Var(0),
                ],
                sub_stamps: vec![Stamp {
                    mask: TypeMask(1),
                    max_len: 7,
                }],
            },
            sub_caps: vec![4],
            outlier_cap: 5,
            outlier_rows: vec![2, 9],
        }
    }

    #[test]
    fn serialization_roundtrip_all_variants() {
        let metas = vec![
            VectorMeta::Plain { capsule: 3 },
            sample_real(),
            VectorMeta::Nominal {
                patterns: vec![DictPattern {
                    pattern: RuntimePattern {
                        segments: vec![Segment::Const(b"SUCC".to_vec())],
                        sub_stamps: vec![],
                    },
                    count: 1,
                    max_len: 4,
                }],
                dict_cap: 7,
                index_cap: 8,
                idx_len: 2,
                dict_len: 1,
                value_counts: vec![3],
            },
        ];
        for meta in metas {
            let mut w = Writer::new();
            meta.write(&mut w);
            let buf = w.into_bytes();
            let got = VectorMeta::read(&mut Reader::new(&buf)).unwrap();
            // Compare via re-serialization (no PartialEq on purpose: the
            // enum holds float-free data so bytes are canonical).
            let mut w2 = Writer::new();
            got.write(&mut w2);
            assert_eq!(w2.into_bytes(), {
                let mut w3 = Writer::new();
                meta.write(&mut w3);
                w3.into_bytes()
            });
        }
    }

    #[test]
    fn pattern_row_map_skips_outliers() {
        let map = VectorMeta::pattern_row_map(&[1, 3], 6);
        assert_eq!(map, vec![0, 2, 4, 5]);
        assert_eq!(VectorMeta::pattern_row_map(&[], 3), vec![0, 1, 2]);
        assert_eq!(VectorMeta::pattern_row_map(&[0, 1, 2], 3), Vec::<u32>::new());
    }

    #[test]
    fn dict_regions_accumulate() {
        let mk = |count, max_len| DictPattern {
            pattern: RuntimePattern {
                segments: vec![Segment::Const(b"x".to_vec())],
                sub_stamps: vec![],
            },
            count,
            max_len,
        };
        let regions = VectorMeta::dict_regions(&[mk(2, 7), mk(1, 4), mk(3, 2)]).unwrap();
        assert_eq!(regions[0], DictRegion { byte_offset: 0, first_index: 0, count: 2, width: 7 });
        assert_eq!(regions[1], DictRegion { byte_offset: 14, first_index: 2, count: 1, width: 4 });
        assert_eq!(regions[2], DictRegion { byte_offset: 18, first_index: 3, count: 3, width: 2 });
    }

    #[test]
    fn capsule_listing() {
        assert_eq!(sample_real().capsules(), vec![4, 5]);
        assert_eq!(VectorMeta::Plain { capsule: 9 }.capsules(), vec![9]);
    }
}
