//! Sorted row-id sets with the union/intersection/difference operations the
//! query engine composes possible-match results with (§5.1).

/// A set of row (or line) numbers, stored as a sorted, deduplicated `Vec`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowSet {
    rows: Vec<u32>,
}

impl RowSet {
    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// The full set `0..n`.
    pub fn all(n: u32) -> Self {
        Self {
            rows: (0..n).collect(),
        }
    }

    /// Builds a set from a sorted, deduplicated vector.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rows` is not strictly ascending.
    pub fn from_sorted(rows: Vec<u32>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0] < w[1]), "rows not sorted/unique");
        Self { rows }
    }

    /// Builds a set from arbitrary row ids (sorts and dedups).
    pub fn from_unsorted(mut rows: Vec<u32>) -> Self {
        rows.sort_unstable();
        rows.dedup();
        Self { rows }
    }

    /// The rows, ascending.
    pub fn as_slice(&self) -> &[u32] {
        &self.rows
    }

    /// Consumes the set, returning the sorted rows.
    pub fn into_vec(self) -> Vec<u32> {
        self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, row: u32) -> bool {
        self.rows.binary_search(&row).is_ok()
    }

    /// Set union (merge of two sorted sequences).
    pub fn union(&self, other: &RowSet) -> RowSet {
        let (a, b) = (&self.rows, &other.rows);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        RowSet { rows: out }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        let (a, b) = (&self.rows, &other.rows);
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        RowSet { rows: out }
    }

    /// Set difference `self \ other`.
    pub fn subtract(&self, other: &RowSet) -> RowSet {
        let (a, b) = (&self.rows, &other.rows);
        let mut out = Vec::with_capacity(a.len());
        let mut j = 0usize;
        for &v in a {
            while j < b.len() && b[j] < v {
                j += 1;
            }
            if j >= b.len() || b[j] != v {
                out.push(v);
            }
        }
        RowSet { rows: out }
    }

    /// Iterates the rows, ascending.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.rows.iter().copied()
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(v: &[u32]) -> RowSet {
        RowSet::from_unsorted(v.to_vec())
    }

    #[test]
    fn basic_ops() {
        let a = rs(&[1, 3, 5, 7]);
        let b = rs(&[3, 4, 5, 8]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 7, 8]);
        assert_eq!(a.intersect(&b).as_slice(), &[3, 5]);
        assert_eq!(a.subtract(&b).as_slice(), &[1, 7]);
        assert_eq!(b.subtract(&a).as_slice(), &[4, 8]);
    }

    #[test]
    fn empty_identities() {
        let a = rs(&[2, 4]);
        let e = RowSet::empty();
        assert_eq!(a.union(&e), a);
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.subtract(&e), a);
        assert_eq!(e.subtract(&a), e);
    }

    #[test]
    fn from_unsorted_dedups() {
        assert_eq!(rs(&[5, 1, 5, 3, 1]).as_slice(), &[1, 3, 5]);
    }

    #[test]
    fn all_and_contains() {
        let a = RowSet::all(4);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3]);
        assert!(a.contains(0) && a.contains(3) && !a.contains(4));
        assert_eq!(RowSet::all(0).len(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let s: RowSet = [9u32, 2, 9, 4].into_iter().collect();
        assert_eq!(s.as_slice(), &[2, 4, 9]);
    }
}
