//! The LogGrep engine: the compression pipeline of §3 (Parser → Extractor →
//! Assembler → Packer).

use crate::boxfile::{Archive, CapsuleBox, GroupMeta};
use crate::capsule::{build_payload, codec_id_by_name, CapsuleMeta, Layout, Stamp};
use crate::config::LogGrepConfig;
use crate::error::{Error, Result};
use crate::extract::nominal::write_index_into;
use crate::extract::{extract_vector, Extraction};
use crate::stats::ArchiveStats;
use crate::vector::VectorMeta;
use logparse::Parser;
use pool::Pool;
use std::time::Instant;

/// The LogGrep compressor.
///
/// # Examples
///
/// ```
/// use loggrep::{LogGrep, LogGrepConfig};
///
/// let engine = LogGrep::new(LogGrepConfig::default());
/// let boxed = engine.compress(b"a 1\na 2\n").unwrap();
/// assert_eq!(boxed.total_lines, 2);
/// ```
#[derive(Debug)]
pub struct LogGrep {
    config: LogGrepConfig,
}

/// One pending Capsule: its payload plus the metadata known at submission.
struct CapsuleJob {
    payload: Vec<u8>,
    layout: Layout,
    stamp: Stamp,
    rows: u32,
}

/// Accumulates Capsule *jobs* while assembling a box.
///
/// `push` only records the payload and assigns the id — the expensive codec
/// work happens in [`Packer::finish`], which fans the pure
/// [`encode_capsule`] stage out across the worker pool and then commits the
/// results **in submission order**. Capsule ids, metadata order, and blob
/// layout therefore depend only on the submission sequence, never on
/// scheduling: parallel and serial compression produce byte-identical
/// archives.
struct Packer<'a> {
    config: &'a LogGrepConfig,
    jobs: Vec<CapsuleJob>,
    main_codec_id: u8,
}

/// Sentinel "codec id" selecting the per-capsule cost model. Never written
/// to the wire: [`encode_capsule`] resolves it to a concrete codec id per
/// payload before the capsule is committed.
const CODEC_AUTO: u8 = u8::MAX;

/// The config name that selects [`CODEC_AUTO`].
pub(crate) const CODEC_NAME_AUTO: &str = "auto";

impl<'a> Packer<'a> {
    fn new(config: &'a LogGrepConfig) -> Result<Self> {
        let main_codec_id = if config.codec_name == CODEC_NAME_AUTO {
            CODEC_AUTO
        } else {
            codec_id_by_name(&config.codec_name)?
        };
        Ok(Self {
            config,
            jobs: Vec::new(),
            main_codec_id,
        })
    }

    /// Records one Capsule payload for encoding; returns its id.
    fn push(&mut self, payload: Vec<u8>, layout: Layout, stamp: Stamp, rows: u32) -> u32 {
        telemetry::counter!("pack.capsules", 1);
        let id = self.jobs.len() as u32;
        self.jobs.push(CapsuleJob {
            payload,
            layout,
            stamp,
            rows,
        });
        id
    }

    /// Builds a Capsule from values (padding per the config) and returns
    /// its id.
    fn push_values<'v, I>(&mut self, values: I) -> u32
    where
        I: IntoIterator<Item = &'v [u8]> + Clone,
    {
        let (payload, layout, stamp, rows) = build_payload(values, self.config.fixed_length);
        self.push(payload, layout, stamp, rows)
    }

    /// Builds the outlier Capsule: always delimited (outliers have wildly
    /// varying lengths and are always fully scanned anyway).
    fn push_outliers<'v, I>(&mut self, values: I) -> u32
    where
        I: IntoIterator<Item = &'v [u8]> + Clone,
    {
        let (payload, layout, stamp, rows) = build_payload(values, false);
        self.push(payload, layout, stamp, rows)
    }

    /// Number of Capsules recorded so far.
    fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Encodes all recorded Capsules (fanned out across `pool`) and commits
    /// them sequentially in submission order.
    fn finish(self, pool: &Pool) -> (Vec<CapsuleMeta>, Vec<u8>) {
        let main_codec_id = self.main_codec_id;
        let encoded = pool.map(&self.jobs, |_, job| {
            encode_capsule(&job.payload, main_codec_id)
        });
        let mut metas = Vec::with_capacity(self.jobs.len());
        let mut blob = Vec::new();
        for (job, (compressed, codec_id)) in self.jobs.iter().zip(&encoded) {
            metas.push(CapsuleMeta {
                layout: job.layout,
                rows: job.rows,
                stamp: job.stamp,
                offset: blob.len() as u64,
                clen: compressed.len() as u64,
                codec: *codec_id,
            });
            blob.extend_from_slice(compressed);
        }
        (metas, blob)
    }
}

/// Lines per parallel-parse chunk. Fixed (not derived from the pool
/// size) so chunk boundaries — and the per-chunk scratch reuse pattern —
/// never depend on the thread count.
const PARSE_CHUNK_LINES: usize = 2048;

/// Payloads below this size always use the store codec: headers dominate.
const MIN_CODEC_LEN: usize = 64;
/// Cost-model band: payloads up to this size may take LzmaLite.
const LZMA_BAND_MAX: usize = 4096;
/// Cost-model probe: bytes of payload sampled for the redundancy estimate.
const PROBE_LEN: usize = 4096;

/// The per-capsule codec cost model: picks a concrete codec id for one
/// payload. A **pure function of the payload bytes** — no clocks, no
/// shared state — so the choice (and therefore the archive) is identical
/// no matter which worker thread encodes the capsule.
///
/// Thresholds come from the capsule-class ratio-vs-speed table emitted by
/// `crates/bench/benches/micro_codecs.rs` (Log C, 4 MiB, this container):
///
/// * LzmaLite compresses at 2–12 MB/s vs Deflate's 25–37 MB/s, and its
///   ratio edge over Deflate is large only on the small dictionary-class
///   capsules (4.4× vs 2.3×); on the index class it is 13.9× vs 10.6×
///   and on plain capsules Deflate actually wins (3.29× vs 3.21×).
/// * So: LzmaLite only inside the small band (≤ [`LZMA_BAND_MAX`]) where
///   its absolute cost is bounded and its edge is largest, and only when
///   a FastLz probe confirms the payload is match-structured (dictionary
///   capsules probe ≥ 1.27×, sub-value noise probes ≈ 1.0×).
/// * Large payloads take Deflate, unless the probe of a strided sample
///   finds essentially no matches — then FastLz, whose attempt is ~5×
///   cheaper and whose miss is absorbed by the store fallback in
///   [`encode_capsule`].
fn cost_model_pick(payload: &[u8]) -> u8 {
    let fastlz = crate::capsule::codec_by_id(3).expect("known codec id");
    if payload.len() <= LZMA_BAND_MAX {
        // Small band: LzmaLite iff the probe shows match structure
        // (probe ratio ≥ 8/7), else Deflate.
        let probe = fastlz.compress(payload).len();
        return if probe.saturating_mul(8) <= payload.len().saturating_mul(7) {
            2 // lzma-lite
        } else {
            1 // deflate
        };
    }
    // Large band: probe a strided sample (head + middle) so a payload
    // whose redundancy only shows up later still registers.
    let head = payload.get(..PROBE_LEN / 2).unwrap_or(payload);
    let mid_at = payload.len() / 2;
    let mid = payload
        .get(mid_at..(mid_at + PROBE_LEN / 2).min(payload.len()))
        .unwrap_or_default();
    let sampled = head.len() + mid.len();
    let probe = fastlz.compress(head).len() + fastlz.compress(mid).len();
    if probe.saturating_mul(50) <= sampled.saturating_mul(49) {
        1 // deflate: enough match structure to pay for the deeper search
    } else {
        3 // fastlz: near-incompressible, take the cheap attempt
    }
}

/// The pure encode stage: compresses one Capsule payload, returning the
/// compressed bytes and the codec id actually used. Safe to run on any
/// worker thread — it touches no shared state beyond telemetry.
fn encode_capsule(payload: &[u8], main_codec_id: u8) -> (Vec<u8>, u8) {
    let _ctx = telemetry::context("compress");
    let _span = telemetry::span("encode");
    // Tiny payloads skip the heavy codec: headers would dominate.
    let codec_id = if payload.len() < MIN_CODEC_LEN {
        0
    } else if main_codec_id == CODEC_AUTO {
        cost_model_pick(payload)
    } else {
        main_codec_id
    };
    let codec = crate::capsule::codec_by_id(codec_id).expect("known codec id");
    let compressed = codec.compress_tracked(payload);
    if codec_id != 0 && compressed.len() >= payload.len() {
        // The codec expanded (or broke even on) an incompressible payload:
        // store wins on size and decodes for free. Still a pure function
        // of the payload, so thread-count determinism holds.
        let store = crate::capsule::codec_by_id(0).expect("known codec id");
        let stored = store.compress_tracked(payload);
        if stored.len() < compressed.len() {
            telemetry::counter!("pack.codec.store_fallback", 1);
            return (stored, 0);
        }
    }
    (compressed, codec_id)
}

impl LogGrep {
    /// Creates an engine with the given configuration.
    pub fn new(config: LogGrepConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LogGrepConfig {
        &self.config
    }

    /// Compresses one log block into a CapsuleBox.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedByte`] if the input contains NUL (the
    /// reserved pad byte), or a codec error on internal failure.
    pub fn compress(&self, raw: &[u8]) -> Result<CapsuleBox> {
        self.compress_with_stats(raw).map(|(b, _)| b)
    }

    /// Compresses and reports statistics.
    pub fn compress_with_stats(&self, raw: &[u8]) -> Result<(CapsuleBox, ArchiveStats)> {
        if let Some(offset) = raw.iter().position(|&b| b == crate::PAD) {
            return Err(Error::UnsupportedByte { offset });
        }
        let start = Instant::now();
        let _compress_span = telemetry::span("compress");
        telemetry::counter!("compress.bytes_raw", raw.len() as u64);
        let lines: Vec<&[u8]> = split_lines(raw);
        let pool = Pool::new(self.config.threads);

        // Parser: static patterns from a 5 % sample, then a full parse
        // fanned out over fixed-size line chunks. `merge_chunks`
        // concatenates per-chunk groups in chunk order, so the block — and
        // therefore the archive — is byte-identical for every thread count.
        let parsed = {
            let _span = telemetry::span("parse");
            let parser = {
                let _span = telemetry::span("train");
                Parser::train(&self.config.parser, lines.iter().copied())
            };
            let chunks: Vec<(usize, &[&[u8]])> =
                lines.chunks(PARSE_CHUNK_LINES.max(1)).enumerate().collect();
            let parts = pool.map(&chunks, |_, &(i, chunk)| {
                let _ctx = telemetry::context("compress");
                let _span = telemetry::span("parse.chunk");
                parser.parse_chunk(chunk.iter().copied(), (i * PARSE_CHUNK_LINES) as u32)
            });
            parser.merge_chunks(parts)
        };

        let mut stats = ArchiveStats {
            raw_size: raw.len() as u64,
            catch_all_lines: parsed.groups[logparse::CATCH_ALL as usize].rows() as u32,
            ..Default::default()
        };

        // Extractor (§4.1): every variable vector is extracted independently
        // — the outcome depends only on `(values, config, vector_id)` — so
        // the stage fans out across the pool in deterministic order.
        let mut extract_jobs: Vec<(usize, usize, u64)> = Vec::new();
        let mut vector_id = 0u64;
        for (tid, group) in parsed.groups.iter().enumerate() {
            if group.rows() == 0 {
                continue;
            }
            for slot in 0..group.vars.len() {
                vector_id += 1;
                extract_jobs.push((tid, slot, vector_id));
            }
        }
        let extractions = pool.map(&extract_jobs, |_, &(tid, slot, vid)| {
            let _ctx = telemetry::context("compress");
            let _span = telemetry::span("extract");
            extract_vector(&parsed.groups[tid].vars[slot], &self.config, vid)
        });

        // Assembler: walk groups in order, consuming the extractions in the
        // same order they were submitted, recording Capsule jobs.
        let _assemble_span = telemetry::span("assemble");
        let mut packer = Packer::new(&self.config)?;
        let mut groups = Vec::new();
        let mut extractions = extractions.into_iter();
        for (tid, group) in parsed.groups.iter().enumerate() {
            if group.rows() == 0 {
                continue;
            }
            let template = parsed.templates[tid].clone();
            let mut vectors = Vec::with_capacity(group.vars.len());
            for values in &group.vars {
                let extraction = extractions.next().expect("one extraction per vector");
                let meta = self.assemble_vector(values, extraction, &mut packer, &mut stats);
                vectors.push(meta);
            }
            groups.push(GroupMeta {
                template,
                line_numbers: group.line_numbers.clone(),
                vectors,
            });
        }
        stats.groups = groups.len();
        stats.capsules = packer.len();
        drop(_assemble_span);

        // Packer: encode every Capsule across the pool, commit in order.
        let (capsules, blob) = packer.finish(&pool);

        let boxed = CapsuleBox {
            groups,
            capsules,
            blob,
            total_lines: parsed.total_lines,
            raw_size: raw.len() as u64,
            fixed_length: self.config.fixed_length,
        };
        stats.compressed_size = boxed.compressed_size() as u64;
        stats.elapsed = start.elapsed();
        Ok((boxed, stats))
    }

    /// Compresses and opens the result as a queryable [`Archive`], with the
    /// configuration's ablation flags applied.
    pub fn compress_to_archive(&self, raw: &[u8]) -> Result<Archive> {
        let boxed = self.compress(raw)?;
        Ok(self.open(boxed))
    }

    /// Opens a CapsuleBox as an [`Archive`] with this configuration's query
    /// flags (stamps, cache).
    pub fn open(&self, boxed: CapsuleBox) -> Archive {
        let mut archive = Archive::from_box(boxed);
        archive.set_query_cache(self.config.use_query_cache);
        archive.set_stamps(self.config.use_stamps);
        archive.set_threads(self.config.threads);
        archive.set_query_cache_entries(self.config.query_cache_entries);
        archive
    }

    /// Assembles one variable vector from its extraction (the Assembler of
    /// §3): builds payloads and records Capsule jobs with the Packer.
    fn assemble_vector(
        &self,
        values: &logparse::Column,
        extraction: Extraction<'_>,
        packer: &mut Packer<'_>,
        stats: &mut ArchiveStats,
    ) -> VectorMeta {
        match extraction {
            Extraction::Real(ex) => {
                stats.real_vectors += 1;
                telemetry::counter!("extract.vectors.real", 1);
                let sub_caps: Vec<u32> = ex
                    .sub_values
                    .iter()
                    .map(|sv| packer.push_values(sv.iter().copied()))
                    .collect();
                let outlier_cap = packer.push_outliers(ex.outlier_values.iter().copied());
                VectorMeta::Real {
                    pattern: ex.pattern,
                    sub_caps,
                    outlier_cap,
                    outlier_rows: ex.outlier_rows,
                }
            }
            Extraction::Nominal(ex) => {
                stats.nominal_vectors += 1;
                telemetry::counter!("extract.vectors.nominal", 1);
                // Dictionary payload: regions padded per pattern width
                // (fixed mode) or newline-delimited (w/o fixed).
                let (dict_payload, dict_layout, dict_rows) = if self.config.fixed_length {
                    let cap: usize = ex
                        .patterns
                        .iter()
                        .map(|p| p.count as usize * p.max_len as usize)
                        .sum();
                    let mut payload = Vec::with_capacity(cap);
                    let mut di = 0usize;
                    for p in &ex.patterns {
                        for _ in 0..p.count {
                            let v = &ex.dict_values[di];
                            payload.extend_from_slice(v);
                            payload
                                .resize(payload.len() + (p.max_len as usize - v.len()), crate::PAD);
                            di += 1;
                        }
                    }
                    (payload, Layout::Raw, ex.dict_values.len() as u32)
                } else {
                    let cap: usize = ex.dict_values.iter().map(|v| v.len() + 1).sum();
                    let mut payload = Vec::with_capacity(cap);
                    for v in &ex.dict_values {
                        payload.extend_from_slice(v);
                        payload.push(b'\n');
                    }
                    (payload, Layout::Delimited, ex.dict_values.len() as u32)
                };
                let dict_stamp = Stamp::of(ex.dict_values.iter().map(|v| v.as_slice()));
                let dict_cap = packer.push(dict_payload, dict_layout, dict_stamp, dict_rows);

                // Index payload: fixed-width decimals (IdxLen digits),
                // written straight into one payload buffer instead of one
                // Vec per row. Every value is exactly `idx_len` digits
                // (`idx_len = decimal_width(dict_len - 1)`), so the stamp
                // and padded layout of `build_payload` are reproduced by
                // slicing the buffer back into rows.
                let fixed = self.config.fixed_length;
                let idx_w = ex.idx_len as usize; // decimal_width is >= 1.
                let stride = idx_w + usize::from(!fixed);
                let mut payload = Vec::with_capacity(ex.index.len() * stride);
                for &i in &ex.index {
                    write_index_into(i, ex.idx_len, &mut payload);
                    if !fixed {
                        payload.push(b'\n');
                    }
                }
                let stamp = Stamp::of(payload.chunks_exact(stride).map(|c| &c[..idx_w]));
                let layout = if fixed {
                    Layout::Padded {
                        width: stamp.max_len.max(1),
                    }
                } else {
                    Layout::Delimited
                };
                let index_cap = packer.push(payload, layout, stamp, ex.index.len() as u32);

                // Per-value occurrence counts: a histogram over the index
                // vector, kept in metadata so aggregates can rank values
                // without decompressing either Capsule.
                let mut value_counts = vec![0u32; ex.dict_values.len()];
                for &i in &ex.index {
                    if let Some(c) = value_counts.get_mut(i as usize) {
                        *c += 1;
                    }
                }

                VectorMeta::Nominal {
                    patterns: ex.patterns,
                    dict_cap,
                    index_cap,
                    idx_len: ex.idx_len,
                    dict_len: ex.dict_values.len() as u32,
                    value_counts,
                }
            }
            Extraction::Plain => {
                stats.plain_vectors += 1;
                telemetry::counter!("extract.vectors.plain", 1);
                let capsule = packer.push_values(values.iter());
                VectorMeta::Plain { capsule }
            }
        }
    }
}

/// Splits a raw block into lines (without trailing newlines). A trailing
/// newline does not produce a final empty line.
pub fn split_lines(raw: &[u8]) -> Vec<&[u8]> {
    let body = if raw.last() == Some(&b'\n') {
        &raw[..raw.len() - 1]
    } else {
        raw
    };
    if body.is_empty() && raw.len() <= 1 {
        return if raw.is_empty() { Vec::new() } else { vec![b""] };
    }
    body.split(|&b| b == b'\n').collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lines_edges() {
        assert_eq!(split_lines(b""), Vec::<&[u8]>::new());
        assert_eq!(split_lines(b"\n"), vec![&b""[..]]);
        assert_eq!(split_lines(b"a"), vec![&b"a"[..]]);
        assert_eq!(split_lines(b"a\n"), vec![&b"a"[..]]);
        assert_eq!(split_lines(b"a\nb"), vec![&b"a"[..], b"b"]);
        assert_eq!(split_lines(b"a\n\nb\n"), vec![&b"a"[..], b"", b"b"]);
    }

    #[test]
    fn nul_bytes_rejected() {
        let engine = LogGrep::new(LogGrepConfig::default());
        let err = engine.compress(b"ab\0cd").unwrap_err();
        assert_eq!(err, Error::UnsupportedByte { offset: 2 });
    }

    #[test]
    fn empty_input_compresses() {
        let engine = LogGrep::new(LogGrepConfig::default());
        let boxed = engine.compress(b"").unwrap();
        assert_eq!(boxed.total_lines, 0);
        let archive = Archive::from_box(boxed);
        assert!(archive.reconstruct_all().unwrap().is_empty());
    }
}
