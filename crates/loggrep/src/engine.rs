//! The LogGrep engine: the compression pipeline of §3 (Parser → Extractor →
//! Assembler → Packer).

use crate::boxfile::{Archive, CapsuleBox, GroupMeta};
use crate::capsule::{build_payload, codec_id_by_name, CapsuleMeta, Layout, Stamp};
use crate::config::LogGrepConfig;
use crate::error::{Error, Result};
use crate::extract::nominal::format_index;
use crate::extract::{extract_vector, Extraction};
use crate::stats::ArchiveStats;
use crate::vector::VectorMeta;
use logparse::Parser;
use pool::Pool;
use std::time::Instant;

/// The LogGrep compressor.
///
/// # Examples
///
/// ```
/// use loggrep::{LogGrep, LogGrepConfig};
///
/// let engine = LogGrep::new(LogGrepConfig::default());
/// let boxed = engine.compress(b"a 1\na 2\n").unwrap();
/// assert_eq!(boxed.total_lines, 2);
/// ```
#[derive(Debug)]
pub struct LogGrep {
    config: LogGrepConfig,
}

/// One pending Capsule: its payload plus the metadata known at submission.
struct CapsuleJob {
    payload: Vec<u8>,
    layout: Layout,
    stamp: Stamp,
    rows: u32,
}

/// Accumulates Capsule *jobs* while assembling a box.
///
/// `push` only records the payload and assigns the id — the expensive codec
/// work happens in [`Packer::finish`], which fans the pure
/// [`encode_capsule`] stage out across the worker pool and then commits the
/// results **in submission order**. Capsule ids, metadata order, and blob
/// layout therefore depend only on the submission sequence, never on
/// scheduling: parallel and serial compression produce byte-identical
/// archives.
struct Packer<'a> {
    config: &'a LogGrepConfig,
    jobs: Vec<CapsuleJob>,
    main_codec_id: u8,
}

impl<'a> Packer<'a> {
    fn new(config: &'a LogGrepConfig) -> Result<Self> {
        Ok(Self {
            config,
            jobs: Vec::new(),
            main_codec_id: codec_id_by_name(&config.codec_name)?,
        })
    }

    /// Records one Capsule payload for encoding; returns its id.
    fn push(&mut self, payload: Vec<u8>, layout: Layout, stamp: Stamp, rows: u32) -> u32 {
        telemetry::counter!("pack.capsules", 1);
        let id = self.jobs.len() as u32;
        self.jobs.push(CapsuleJob {
            payload,
            layout,
            stamp,
            rows,
        });
        id
    }

    /// Builds a Capsule from values (padding per the config) and returns
    /// its id.
    fn push_values<'v, I>(&mut self, values: I) -> u32
    where
        I: IntoIterator<Item = &'v [u8]> + Clone,
    {
        let (payload, layout, stamp, rows) = build_payload(values, self.config.fixed_length);
        self.push(payload, layout, stamp, rows)
    }

    /// Builds the outlier Capsule: always delimited (outliers have wildly
    /// varying lengths and are always fully scanned anyway).
    fn push_outliers<'v, I>(&mut self, values: I) -> u32
    where
        I: IntoIterator<Item = &'v [u8]> + Clone,
    {
        let (payload, layout, stamp, rows) = build_payload(values, false);
        self.push(payload, layout, stamp, rows)
    }

    /// Number of Capsules recorded so far.
    fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Encodes all recorded Capsules (fanned out across `pool`) and commits
    /// them sequentially in submission order.
    fn finish(self, pool: &Pool) -> (Vec<CapsuleMeta>, Vec<u8>) {
        let main_codec_id = self.main_codec_id;
        let encoded = pool.map(&self.jobs, |_, job| {
            encode_capsule(&job.payload, main_codec_id)
        });
        let mut metas = Vec::with_capacity(self.jobs.len());
        let mut blob = Vec::new();
        for (job, (compressed, codec_id)) in self.jobs.iter().zip(&encoded) {
            metas.push(CapsuleMeta {
                layout: job.layout,
                rows: job.rows,
                stamp: job.stamp,
                offset: blob.len() as u64,
                clen: compressed.len() as u64,
                codec: *codec_id,
            });
            blob.extend_from_slice(compressed);
        }
        (metas, blob)
    }
}

/// The pure encode stage: compresses one Capsule payload, returning the
/// compressed bytes and the codec id actually used. Safe to run on any
/// worker thread — it touches no shared state beyond telemetry.
fn encode_capsule(payload: &[u8], main_codec_id: u8) -> (Vec<u8>, u8) {
    let _ctx = telemetry::context("compress");
    let _span = telemetry::span("encode");
    // Tiny payloads skip the heavy codec: headers would dominate.
    let codec_id = if payload.len() < 64 { 0 } else { main_codec_id };
    let codec = crate::capsule::codec_by_id(codec_id).expect("known codec id");
    (codec.compress_tracked(payload), codec_id)
}

impl LogGrep {
    /// Creates an engine with the given configuration.
    pub fn new(config: LogGrepConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LogGrepConfig {
        &self.config
    }

    /// Compresses one log block into a CapsuleBox.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedByte`] if the input contains NUL (the
    /// reserved pad byte), or a codec error on internal failure.
    pub fn compress(&self, raw: &[u8]) -> Result<CapsuleBox> {
        self.compress_with_stats(raw).map(|(b, _)| b)
    }

    /// Compresses and reports statistics.
    pub fn compress_with_stats(&self, raw: &[u8]) -> Result<(CapsuleBox, ArchiveStats)> {
        if let Some(offset) = raw.iter().position(|&b| b == crate::PAD) {
            return Err(Error::UnsupportedByte { offset });
        }
        let start = Instant::now();
        let _compress_span = telemetry::span("compress");
        telemetry::counter!("compress.bytes_raw", raw.len() as u64);
        let lines: Vec<&[u8]> = split_lines(raw);

        // Parser: static patterns from a 5 % sample, then full parse.
        let parsed = {
            let _span = telemetry::span("parse");
            let parser = Parser::train(&self.config.parser, lines.iter().copied());
            parser.parse_all(lines.iter().copied())
        };

        let mut stats = ArchiveStats {
            raw_size: raw.len() as u64,
            catch_all_lines: parsed.groups[logparse::CATCH_ALL as usize].rows() as u32,
            ..Default::default()
        };

        let pool = Pool::new(self.config.threads);

        // Extractor (§4.1): every variable vector is extracted independently
        // — the outcome depends only on `(values, config, vector_id)` — so
        // the stage fans out across the pool in deterministic order.
        let mut extract_jobs: Vec<(usize, usize, u64)> = Vec::new();
        let mut vector_id = 0u64;
        for (tid, group) in parsed.groups.iter().enumerate() {
            if group.rows() == 0 {
                continue;
            }
            for slot in 0..group.vars.len() {
                vector_id += 1;
                extract_jobs.push((tid, slot, vector_id));
            }
        }
        let extractions = pool.map(&extract_jobs, |_, &(tid, slot, vid)| {
            let _ctx = telemetry::context("compress");
            let _span = telemetry::span("extract");
            extract_vector(&parsed.groups[tid].vars[slot], &self.config, vid)
        });

        // Assembler: walk groups in order, consuming the extractions in the
        // same order they were submitted, recording Capsule jobs.
        let mut packer = Packer::new(&self.config)?;
        let mut groups = Vec::new();
        let mut extractions = extractions.into_iter();
        for (tid, group) in parsed.groups.iter().enumerate() {
            if group.rows() == 0 {
                continue;
            }
            let template = parsed.templates[tid].clone();
            let mut vectors = Vec::with_capacity(group.vars.len());
            for values in &group.vars {
                let extraction = extractions.next().expect("one extraction per vector");
                let meta = self.assemble_vector(values, extraction, &mut packer, &mut stats);
                vectors.push(meta);
            }
            groups.push(GroupMeta {
                template,
                line_numbers: group.line_numbers.clone(),
                vectors,
            });
        }
        stats.groups = groups.len();
        stats.capsules = packer.len();

        // Packer: encode every Capsule across the pool, commit in order.
        let (capsules, blob) = packer.finish(&pool);

        let boxed = CapsuleBox {
            groups,
            capsules,
            blob,
            total_lines: parsed.total_lines,
            raw_size: raw.len() as u64,
            fixed_length: self.config.fixed_length,
        };
        stats.compressed_size = boxed.compressed_size() as u64;
        stats.elapsed = start.elapsed();
        Ok((boxed, stats))
    }

    /// Compresses and opens the result as a queryable [`Archive`], with the
    /// configuration's ablation flags applied.
    pub fn compress_to_archive(&self, raw: &[u8]) -> Result<Archive> {
        let boxed = self.compress(raw)?;
        Ok(self.open(boxed))
    }

    /// Opens a CapsuleBox as an [`Archive`] with this configuration's query
    /// flags (stamps, cache).
    pub fn open(&self, boxed: CapsuleBox) -> Archive {
        let mut archive = Archive::from_box(boxed);
        archive.set_query_cache(self.config.use_query_cache);
        archive.set_stamps(self.config.use_stamps);
        archive.set_threads(self.config.threads);
        archive.set_query_cache_entries(self.config.query_cache_entries);
        archive
    }

    /// Assembles one variable vector from its extraction (the Assembler of
    /// §3): builds payloads and records Capsule jobs with the Packer.
    fn assemble_vector(
        &self,
        values: &[Vec<u8>],
        extraction: Extraction<'_>,
        packer: &mut Packer<'_>,
        stats: &mut ArchiveStats,
    ) -> VectorMeta {
        match extraction {
            Extraction::Real(ex) => {
                stats.real_vectors += 1;
                telemetry::counter!("extract.vectors.real", 1);
                let sub_caps: Vec<u32> = ex
                    .sub_values
                    .iter()
                    .map(|sv| packer.push_values(sv.iter().copied()))
                    .collect();
                let outlier_cap = packer.push_outliers(ex.outlier_values.iter().copied());
                VectorMeta::Real {
                    pattern: ex.pattern,
                    sub_caps,
                    outlier_cap,
                    outlier_rows: ex.outlier_rows,
                }
            }
            Extraction::Nominal(ex) => {
                stats.nominal_vectors += 1;
                telemetry::counter!("extract.vectors.nominal", 1);
                // Dictionary payload: regions padded per pattern width
                // (fixed mode) or newline-delimited (w/o fixed).
                let (dict_payload, dict_layout, dict_rows) = if self.config.fixed_length {
                    let mut payload = Vec::new();
                    let mut di = 0usize;
                    for p in &ex.patterns {
                        for _ in 0..p.count {
                            let v = &ex.dict_values[di];
                            payload.extend_from_slice(v);
                            payload
                                .resize(payload.len() + (p.max_len as usize - v.len()), crate::PAD);
                            di += 1;
                        }
                    }
                    (payload, Layout::Raw, ex.dict_values.len() as u32)
                } else {
                    let mut payload = Vec::new();
                    for v in &ex.dict_values {
                        payload.extend_from_slice(v);
                        payload.push(b'\n');
                    }
                    (payload, Layout::Delimited, ex.dict_values.len() as u32)
                };
                let dict_stamp = Stamp::of(ex.dict_values.iter().map(|v| v.as_slice()));
                let dict_cap = packer.push(dict_payload, dict_layout, dict_stamp, dict_rows);

                // Index payload: fixed-width decimals (IdxLen digits).
                let formatted: Vec<Vec<u8>> = ex
                    .index
                    .iter()
                    .map(|&i| format_index(i, ex.idx_len))
                    .collect();
                let index_cap = packer.push_values(formatted.iter().map(|v| v.as_slice()));

                VectorMeta::Nominal {
                    patterns: ex.patterns,
                    dict_cap,
                    index_cap,
                    idx_len: ex.idx_len,
                    dict_len: ex.dict_values.len() as u32,
                }
            }
            Extraction::Plain => {
                stats.plain_vectors += 1;
                telemetry::counter!("extract.vectors.plain", 1);
                let capsule = packer.push_values(values.iter().map(|v| v.as_slice()));
                VectorMeta::Plain { capsule }
            }
        }
    }
}

/// Splits a raw block into lines (without trailing newlines). A trailing
/// newline does not produce a final empty line.
pub fn split_lines(raw: &[u8]) -> Vec<&[u8]> {
    let body = if raw.last() == Some(&b'\n') {
        &raw[..raw.len() - 1]
    } else {
        raw
    };
    if body.is_empty() && raw.len() <= 1 {
        return if raw.is_empty() { Vec::new() } else { vec![b""] };
    }
    body.split(|&b| b == b'\n').collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lines_edges() {
        assert_eq!(split_lines(b""), Vec::<&[u8]>::new());
        assert_eq!(split_lines(b"\n"), vec![&b""[..]]);
        assert_eq!(split_lines(b"a"), vec![&b"a"[..]]);
        assert_eq!(split_lines(b"a\n"), vec![&b"a"[..]]);
        assert_eq!(split_lines(b"a\nb"), vec![&b"a"[..], b"b"]);
        assert_eq!(split_lines(b"a\n\nb\n"), vec![&b"a"[..], b"", b"b"]);
    }

    #[test]
    fn nul_bytes_rejected() {
        let engine = LogGrep::new(LogGrepConfig::default());
        let err = engine.compress(b"ab\0cd").unwrap_err();
        assert_eq!(err, Error::UnsupportedByte { offset: 2 });
    }

    #[test]
    fn empty_input_compresses() {
        let engine = LogGrep::new(LogGrepConfig::default());
        let boxed = engine.compress(b"").unwrap();
        assert_eq!(boxed.total_lines, 0);
        let archive = Archive::from_box(boxed);
        assert!(archive.reconstruct_all().unwrap().is_empty());
    }
}
