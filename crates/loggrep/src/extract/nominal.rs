//! Pattern-merging extraction for nominal variable vectors (§4.1, Figure 5).
//!
//! Unique values are sketched by splitting on non-alphanumeric characters;
//! sketches with the same delimiter structure merge into one pattern, with
//! per-position constants where all members agree. The deduplicated values
//! are reordered pattern-by-pattern into a *dictionary vector*, and the
//! original vector becomes an *index vector* of fixed-width decimal indices.

use crate::capsule::Stamp;
use crate::pattern::{RuntimePattern, Segment};
use logparse::Column;
use std::collections::HashMap;

/// One merged pattern over a slice of the dictionary.
#[derive(Debug, Clone)]
pub struct DictPattern {
    /// The pattern (constants + typed sub-variables).
    pub pattern: RuntimePattern,
    /// Number of dictionary values following this pattern.
    pub count: u32,
    /// Maximum value length in this pattern's dictionary region; region rows
    /// are padded to this width (enables the §5.2 region jump).
    pub max_len: u32,
}

/// The result of pattern merging for one nominal vector.
#[derive(Debug)]
pub struct NominalExtraction {
    /// Merged patterns, in dictionary order.
    pub patterns: Vec<DictPattern>,
    /// Dictionary values, reordered pattern-by-pattern.
    pub dict_values: Vec<Vec<u8>>,
    /// Per-row dictionary index (same length as the original vector).
    pub index: Vec<u32>,
    /// Width in digits of the stored decimal indices (`IdxLen`).
    pub idx_len: u32,
}

/// The sketch of one value: delimiter structure + part slices.
fn sketch(value: &[u8]) -> (Vec<u8>, Vec<&[u8]>) {
    let mut key = Vec::new();
    let mut parts = Vec::new();
    let mut start = 0usize;
    for (i, &b) in value.iter().enumerate() {
        if !b.is_ascii_alphanumeric() {
            parts.push(&value[start..i]);
            key.push(b'P');
            key.push(b);
            start = i + 1;
        }
    }
    parts.push(&value[start..]);
    key.push(b'P');
    (key, parts)
}

/// Runs pattern merging over the whole vector (O(n log n): the unique
/// values are grouped — conceptually sorted — by sketch).
pub fn extract(values: &Column) -> NominalExtraction {
    // Step 1: deduplicate, keeping first-seen order.
    let mut first_seen: HashMap<&[u8], u32> = HashMap::new();
    let mut unique: Vec<&[u8]> = Vec::new();
    for v in values.iter() {
        first_seen.entry(v).or_insert_with(|| {
            unique.push(v);
            (unique.len() - 1) as u32
        });
    }

    // Steps 2-3: sketch each unique value and group by sketch key.
    let mut group_order: Vec<Vec<u8>> = Vec::new();
    let mut groups: HashMap<Vec<u8>, Vec<usize>> = HashMap::new();
    for (i, v) in unique.iter().enumerate() {
        let (key, _) = sketch(v);
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                group_order.push(key);
                Vec::new()
            })
            .push(i);
    }

    // Steps 4-5: merge each group into a pattern; reorder the dictionary so
    // values of the same pattern are consecutive.
    let mut patterns = Vec::with_capacity(group_order.len());
    let mut dict_values: Vec<Vec<u8>> = Vec::with_capacity(unique.len());
    let mut dict_index_of: HashMap<&[u8], u32> = HashMap::new();
    for key in &group_order {
        let members = &groups[key];
        let member_parts: Vec<Vec<&[u8]>> =
            members.iter().map(|&i| sketch(unique[i]).1).collect();
        let nparts = member_parts[0].len();
        // Delimiter bytes of this sketch (between parts).
        // 'P' marks a part in the key; delimiters are non-alphanumeric and
        // therefore can never collide with it.
        let delims: Vec<u8> = key.iter().copied().filter(|&b| b != b'P').collect();
        debug_assert_eq!(delims.len() + 1, nparts);

        // Per-position: constant if all members agree.
        let mut segments: Vec<Segment> = Vec::new();
        let mut sub_stamps: Vec<Stamp> = Vec::new();
        let push_const = |segments: &mut Vec<Segment>, bytes: &[u8]| {
            if bytes.is_empty() {
                return;
            }
            if let Some(Segment::Const(prev)) = segments.last_mut() {
                prev.extend_from_slice(bytes);
            } else {
                segments.push(Segment::Const(bytes.to_vec()));
            }
        };
        for p in 0..nparts {
            let first = member_parts[0][p];
            let all_same = member_parts.iter().all(|mp| mp[p] == first);
            if all_same {
                push_const(&mut segments, first);
            } else {
                let stamp = Stamp::of(member_parts.iter().map(|mp| mp[p]));
                segments.push(Segment::Var(sub_stamps.len()));
                sub_stamps.push(stamp);
            }
            if p < delims.len() {
                push_const(&mut segments, &[delims[p]]);
            }
        }
        if segments.is_empty() {
            // All members are the empty string.
            segments.push(Segment::Const(Vec::new()));
        }

        let mut max_len = 0u32;
        for &i in members {
            let v = unique[i];
            max_len = max_len.max(v.len() as u32);
            dict_index_of.insert(v, dict_values.len() as u32);
            dict_values.push(v.to_vec());
        }
        patterns.push(DictPattern {
            pattern: RuntimePattern {
                segments,
                sub_stamps,
            },
            count: members.len() as u32,
            max_len: max_len.max(1),
        });
    }

    // Index vector: per original row, the dictionary index.
    let index: Vec<u32> = values.iter().map(|v| dict_index_of[v]).collect();
    let idx_len = decimal_width(dict_values.len().saturating_sub(1) as u32);

    NominalExtraction {
        patterns,
        dict_values,
        index,
        idx_len,
    }
}

/// Number of decimal digits needed for `v` (at least 1).
pub fn decimal_width(v: u32) -> u32 {
    let mut w = 1;
    let mut x = v / 10;
    while x > 0 {
        w += 1;
        x /= 10;
    }
    w
}

/// Formats a dictionary index as zero-padded fixed-width decimal.
pub fn format_index(idx: u32, width: u32) -> Vec<u8> {
    let mut out = Vec::new();
    write_index_into(idx, width, &mut out);
    out
}

/// Appends `idx` as zero-padded fixed-width decimal onto `out`: the
/// allocation-free form of [`format_index`] the Assembler uses to build
/// index-capsule payloads in one buffer. Indices wider than `width` keep
/// all their digits (matching [`format_index`]).
pub fn write_index_into(idx: u32, width: u32, out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + width.max(decimal_width(idx)) as usize, b'0');
    let mut v = idx;
    let mut i = out.len();
    loop {
        i -= 1;
        out[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
}

/// Parses a zero-padded decimal index.
pub fn parse_index(bytes: &[u8]) -> Option<u32> {
    let mut v: u32 = 0;
    if bytes.is_empty() {
        return None;
    }
    for &b in bytes {
        if !b.is_ascii_digit() {
            return None;
        }
        v = v.checked_mul(10)?.checked_add((b - b'0') as u32)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(strs: &[&str]) -> Column {
        Column::from_values(strs.iter().map(|s| s.as_bytes()))
    }

    #[test]
    fn figure5_example() {
        let values = v(&["ERR#404", "SUCC", "ERR#501", "SUCC", "ERR#404", "SUCC", "SUCC"]);
        let ex = extract(&values);
        // Two patterns: ERR#<d> (count 2) and SUCC (count 1).
        assert_eq!(ex.patterns.len(), 2);
        assert_eq!(ex.patterns[0].count, 2);
        assert_eq!(ex.patterns[0].pattern.display(), "ERR#<typ=1,len=3>");
        assert_eq!(ex.patterns[0].max_len, 7);
        assert_eq!(ex.patterns[1].count, 1);
        assert_eq!(ex.patterns[1].max_len, 4);
        assert_eq!(
            ex.dict_values,
            vec![b"ERR#404".to_vec(), b"ERR#501".to_vec(), b"SUCC".to_vec()]
        );
        assert_eq!(ex.index, vec![0, 2, 1, 2, 0, 2, 2]);
        assert_eq!(ex.idx_len, 1);
    }

    #[test]
    fn dictionary_roundtrips_every_row() {
        let values = v(&["a-1", "b-2", "a-1", "plain", "c-3", "plain"]);
        let ex = extract(&values);
        for (row, value) in values.iter().enumerate() {
            assert_eq!(&ex.dict_values[ex.index[row] as usize], value);
        }
    }

    #[test]
    fn sketch_structure() {
        let (key, parts) = sketch(b"ERR#404");
        assert_eq!(key, b"P#P");
        assert_eq!(parts, vec![&b"ERR"[..], b"404"]);
        let (key2, parts2) = sketch(b"--x");
        assert_eq!(key2, b"P-P-P");
        assert_eq!(parts2, vec![&b""[..], b"", b"x"]);
        let (key3, parts3) = sketch(b"");
        assert_eq!(key3, b"P");
        assert_eq!(parts3, vec![&b""[..]]);
    }

    #[test]
    fn constants_detected_per_position() {
        let values = v(&["user=alice", "user=bob", "user=alice"]);
        let ex = extract(&values);
        assert_eq!(ex.patterns.len(), 1);
        let d = ex.patterns[0].pattern.display();
        assert!(d.starts_with("user="), "{d}");
    }

    #[test]
    fn index_width_and_formatting() {
        assert_eq!(decimal_width(0), 1);
        assert_eq!(decimal_width(9), 1);
        assert_eq!(decimal_width(10), 2);
        assert_eq!(decimal_width(99), 2);
        assert_eq!(decimal_width(100), 3);
        assert_eq!(format_index(7, 3), b"007");
        assert_eq!(parse_index(b"007"), Some(7));
        assert_eq!(parse_index(b""), None);
        assert_eq!(parse_index(b"0x7"), None);
    }

    #[test]
    fn patterns_cover_whole_dictionary() {
        let values = v(&["x.1", "y.2", "z.3", "lone", "x.1"]);
        let ex = extract(&values);
        let total: u32 = ex.patterns.iter().map(|p| p.count).sum();
        assert_eq!(total as usize, ex.dict_values.len());
    }

    #[test]
    fn empty_values_are_handled() {
        let values = v(&["", "", "x", ""]);
        let ex = extract(&values);
        assert_eq!(ex.dict_values.len(), 2);
        for (row, value) in values.iter().enumerate() {
            assert_eq!(&ex.dict_values[ex.index[row] as usize], value);
        }
        // Region widths stay >= 1 even for the empty value.
        assert!(ex.patterns.iter().all(|p| p.max_len >= 1));
    }
}
