//! Tree-expanding runtime-pattern extraction for real variable vectors
//! (§4.1, Figure 4).
//!
//! A sample of the vector's values is placed in a root node; leaves are
//! repeatedly split by a delimiter — a non-alphanumeric character drawn from
//! a randomly picked value, or the longest common substring (LCS) of two
//! randomly picked values — accepted when at least 95 % of the leaf's values
//! contain it. All-equal leaves become constants; unsplitable leaves become
//! sub-variables. The expansion is O(n) in the sample size because the
//! iteration count is bounded by the (constant-ish) number of sub-variables.

use crate::capsule::Stamp;
use crate::config::LogGrepConfig;
use crate::pattern::{RuntimePattern, Segment};
use logparse::Column;
use rand::rngs::StdRng;
use rand::Rng;

/// A real vector decomposed by its extracted runtime pattern.
#[derive(Debug)]
pub struct RealExtraction<'a> {
    /// The extracted pattern, with per-sub-variable stamps filled in.
    pub pattern: RuntimePattern,
    /// `sub_values[v][pattern_row]` = value of sub-variable `v`; pattern
    /// rows exclude outliers.
    pub sub_values: Vec<Vec<&'a [u8]>>,
    /// Rows (vector-local, ascending) whose value did not match the pattern.
    pub outlier_rows: Vec<u32>,
    /// The outlier values, parallel to `outlier_rows`.
    pub outlier_values: Vec<&'a [u8]>,
}

/// One leaf of the (flattened, in-order) pattern tree.
enum Leaf {
    Const(Vec<u8>),
    Var,
}

/// Extracts the runtime pattern of `values` and decomposes every value.
///
/// Returns `None` when no useful pattern exists (pattern would be a single
/// sub-variable) or too many values fail to match it.
pub fn extract<'a>(
    values: &'a Column,
    config: &LogGrepConfig,
    rng: &mut StdRng,
) -> Option<RealExtraction<'a>> {
    // Sample 5 % (at least 32) and deduplicate: the root node.
    let want = ((values.len() as f64 * config.value_sample_rate).ceil() as usize)
        .max(32)
        .min(values.len());
    let stride = values.len().div_ceil(want).max(1);
    let mut sample: Vec<&[u8]> = values.iter().step_by(stride).collect();
    sample.sort_unstable();
    sample.dedup();
    if sample.is_empty() {
        return None;
    }

    let leaves = expand(sample, 0, config, rng);

    // Assemble segments from leaves: drop empty constants, merge adjacent
    // constants, number the sub-variables left to right.
    let mut segments: Vec<Segment> = Vec::new();
    let mut nvars = 0usize;
    for leaf in leaves {
        match leaf {
            Leaf::Const(c) => {
                if c.is_empty() {
                    continue;
                }
                if let Some(Segment::Const(prev)) = segments.last_mut() {
                    prev.extend_from_slice(&c);
                } else {
                    segments.push(Segment::Const(c));
                }
            }
            Leaf::Var => {
                segments.push(Segment::Var(nvars));
                nvars += 1;
            }
        }
    }
    // A single bare sub-variable carries no information.
    if segments.len() == 1 && matches!(segments[0], Segment::Var(_)) {
        return None;
    }
    if segments.is_empty() {
        return None;
    }
    let mut pattern = RuntimePattern {
        segments,
        sub_stamps: vec![Stamp::default(); nvars],
    };

    // Decompose the full vector; pattern misses become outliers.
    let mut sub_values: Vec<Vec<&[u8]>> = vec![Vec::new(); nvars];
    let mut outlier_rows = Vec::new();
    let mut outlier_values = Vec::new();
    for (row, value) in values.iter().enumerate() {
        match pattern.decompose(value) {
            Some(subs) => {
                for (v, s) in subs.into_iter().enumerate() {
                    sub_values[v].push(s);
                }
            }
            None => {
                outlier_rows.push(row as u32);
                outlier_values.push(value);
            }
        }
    }
    if (outlier_rows.len() as f64) > values.len() as f64 * config.max_outlier_rate {
        return None;
    }

    // Stamp each sub-variable vector (§4.3).
    for (v, vals) in sub_values.iter().enumerate() {
        pattern.sub_stamps[v] = Stamp::of(vals.iter().copied());
    }

    telemetry::counter!("extract.outlier_rows", outlier_rows.len() as u64);
    Some(RealExtraction {
        pattern,
        sub_values,
        outlier_rows,
        outlier_values,
    })
}

/// Recursively expands a leaf into in-order leaves.
fn expand(
    values: Vec<&[u8]>,
    depth: u32,
    config: &LogGrepConfig,
    rng: &mut StdRng,
) -> Vec<Leaf> {
    debug_assert!(!values.is_empty());
    telemetry::counter!("extract.tree_rounds", 1);
    if values.iter().all(|v| *v == values[0]) {
        return vec![Leaf::Const(values[0].to_vec())];
    }
    if depth >= config.max_tree_depth {
        return vec![Leaf::Var];
    }

    let mut tried: Vec<Vec<u8>> = Vec::new();
    for _ in 0..config.delimiter_attempts {
        let Some(delim) = pick_delimiter(&values, &tried, rng) else {
            break;
        };
        tried.push(delim.clone());
        let containing = values
            .iter()
            .filter(|v| strsearch::contains(v, &delim))
            .count();
        if (containing as f64) < values.len() as f64 * config.split_coverage {
            continue;
        }
        // Accepted: split each containing value at the first occurrence;
        // the few non-containing sample values drop out (they will simply
        // be outliers of the final pattern).
        let mut lefts = Vec::with_capacity(containing);
        let mut rights = Vec::with_capacity(containing);
        for v in &values {
            if let Some(at) = strsearch::find(v, &delim) {
                lefts.push(&v[..at]);
                rights.push(&v[at + delim.len()..]);
            }
        }
        let mut out = expand(lefts, depth + 1, config, rng);
        out.push(Leaf::Const(delim));
        out.extend(expand(rights, depth + 1, config, rng));
        return out;
    }
    vec![Leaf::Var]
}

/// Picks a candidate delimiter: a non-alphanumeric byte from a random value,
/// falling back to the LCS of two random values. Skips candidates already
/// tried. Returns `None` if no fresh candidate exists.
fn pick_delimiter(values: &[&[u8]], tried: &[Vec<u8>], rng: &mut StdRng) -> Option<Vec<u8>> {
    // Try a few random draws for a non-alphanumeric character.
    for _ in 0..4 {
        let v = values[rng.gen_range(0..values.len())];
        let non_alnum: Vec<u8> = v
            .iter()
            .copied()
            .filter(|b| !b.is_ascii_alphanumeric())
            .collect();
        if !non_alnum.is_empty() {
            let d = vec![non_alnum[rng.gen_range(0..non_alnum.len())]];
            if !tried.contains(&d) {
                return Some(d);
            }
        }
    }
    // LCS fallback: longest common substring of two random values.
    for _ in 0..4 {
        let a = values[rng.gen_range(0..values.len())];
        let b = values[rng.gen_range(0..values.len())];
        if a == b {
            continue;
        }
        let lcs = longest_common_substring(a, b);
        if lcs.len() >= 2 && !tried.contains(&lcs) {
            return Some(lcs);
        }
    }
    None
}

/// Longest common substring via dynamic programming (values are short).
fn longest_common_substring(a: &[u8], b: &[u8]) -> Vec<u8> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut best_len = 0usize;
    let mut best_end = 0usize; // End index in `a` (exclusive).
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            cur[j] = if a[i - 1] == b[j - 1] { prev[j - 1] + 1 } else { 0 };
            if cur[j] > best_len {
                best_len = cur[j];
                best_end = i;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    a[best_end - best_len..best_end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn column_of(values: &[String]) -> Column {
        Column::from_values(values.iter().map(|s| s.as_bytes()))
    }

    fn run(values: Vec<String>) -> Option<RealExtraction<'static>> {
        // Leak for 'static convenience in tests.
        let values: &'static Column = Box::leak(Box::new(column_of(&values)));
        let cfg = LogGrepConfig::default();
        let mut rng = StdRng::seed_from_u64(42);
        extract(values, &cfg, &mut rng)
    }

    #[test]
    fn block_ids_extract_prefix_pattern() {
        let values: Vec<String> = (0..500).map(|i| format!("blk_{}", 1_000_000 + i * 7)).collect();
        let ex = run(values).expect("pattern expected");
        let display = ex.pattern.display();
        assert!(display.starts_with("blk_") || display.contains("blk"), "{display}");
        assert!(ex.outlier_rows.is_empty());
        assert_eq!(ex.pattern.sub_vars(), ex.sub_values.len());
    }

    #[test]
    fn figure4_mixed_values_have_outliers() {
        let mut values: Vec<String> = (0..200).map(|i| format!("block_{:X}F8{:X}", i % 16, i * 3 % 256)).collect();
        values.push("Failed".to_string());
        let ex = run(values).expect("pattern expected");
        assert_eq!(ex.outlier_values.len(), 1);
        assert_eq!(ex.outlier_values[0], b"Failed");
    }

    #[test]
    fn sub_values_reconstruct_rows() {
        let values: Vec<String> = (0..300)
            .map(|i| format!("/root/usr/admin/task{}.log", i))
            .collect();
        let raw = column_of(&values);
        let cfg = LogGrepConfig::default();
        let mut rng = StdRng::seed_from_u64(1);
        let ex = extract(&raw, &cfg, &mut rng).expect("pattern expected");
        // Walk pattern rows and rebuild each value.
        let mut pr = 0usize;
        for (row, value) in raw.iter().enumerate() {
            if ex.outlier_rows.binary_search(&(row as u32)).is_ok() {
                continue;
            }
            let subs: Vec<&[u8]> = ex.sub_values.iter().map(|sv| sv[pr]).collect();
            assert_eq!(ex.pattern.render(&subs), value, "row {row}");
            pr += 1;
        }
    }

    #[test]
    fn incompatible_values_yield_none_or_high_outliers() {
        // Random-ish unrelated strings: no single pattern covers them.
        let values: Vec<String> = (0..100)
            .map(|i| match i % 4 {
                0 => format!("alpha{i}"),
                1 => format!("{i}beta"),
                2 => format!("g-{i}-h"),
                _ => format!("{i}"),
            })
            .collect();
        // Either no pattern, or one with acceptable outliers; both are
        // valid outcomes — correctness is preserved by the outlier path.
        let _ = run(values);
    }

    #[test]
    fn lcs_basics() {
        assert_eq!(longest_common_substring(b"abcdef", b"zcdez"), b"cde");
        assert_eq!(longest_common_substring(b"abc", b"xyz"), b"");
        assert_eq!(longest_common_substring(b"", b"x"), b"");
        assert_eq!(longest_common_substring(b"1FF8aa", b"1FF8bb"), b"1FF8");
    }

    #[test]
    fn all_identical_values_become_constant() {
        let values: Vec<String> = (0..100).map(|_| "same".to_string()).collect();
        // Duplication rate is high, so this is normally nominal; call the
        // tree expander directly to check the constant path.
        let raw = column_of(&values);
        let cfg = LogGrepConfig::default();
        let mut rng = StdRng::seed_from_u64(9);
        let ex = extract(&raw, &cfg, &mut rng).expect("constant pattern");
        assert_eq!(ex.pattern.sub_vars(), 0);
        assert!(ex.outlier_rows.is_empty());
    }
}
