//! Runtime-pattern extraction (§4.1): categorize each variable vector by
//! duplication rate, then extract with the tree-expanding method (real
//! vectors) or the pattern-merging method (nominal vectors).

pub mod nominal;
pub mod real;

pub use nominal::{DictPattern, NominalExtraction};
pub use real::RealExtraction;

use crate::config::LogGrepConfig;
use logparse::Column;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// The outcome of runtime-pattern extraction for one variable vector.
#[derive(Debug)]
pub enum Extraction<'a> {
    /// A real (low-duplication) vector decomposed by one runtime pattern.
    Real(RealExtraction<'a>),
    /// A nominal (high-duplication) vector as dictionary + index.
    Nominal(NominalExtraction),
    /// No useful runtime pattern; store the vector as a single Capsule.
    Plain,
}

/// Duplication rate of a value set: `(total - unique) / total` (§4.1).
///
/// Returns 0.0 for an empty set.
pub fn duplication_rate(values: &Column) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let unique: HashSet<&[u8]> = values.iter().collect();
    (values.len() - unique.len()) as f64 / values.len() as f64
}

/// Categorization outcome, reported by stats and Figure 3's harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Duplication rate below the threshold → tree-expanding extraction.
    Real,
    /// Duplication rate at/above the threshold → pattern merging.
    Nominal,
}

/// Categorizes a vector by the paper's 0.5 duplication-rate heuristic.
pub fn categorize(values: &Column, config: &LogGrepConfig) -> Category {
    if duplication_rate(values) < config.duplication_threshold {
        Category::Real
    } else {
        Category::Nominal
    }
}

/// Extracts runtime pattern(s) for one variable vector.
///
/// `vector_id` seeds the randomized delimiter choices so compression is
/// deterministic for a given configuration.
pub fn extract_vector<'a>(
    values: &'a Column,
    config: &LogGrepConfig,
    vector_id: u64,
) -> Extraction<'a> {
    if values.len() < config.min_vector_for_patterns {
        return Extraction::Plain;
    }
    match categorize(values, config) {
        Category::Real if config.use_runtime_real => {
            let mut rng = StdRng::seed_from_u64(config.seed ^ vector_id.wrapping_mul(0x9e37));
            match real::extract(values, config, &mut rng) {
                Some(ex) => Extraction::Real(ex),
                None => Extraction::Plain,
            }
        }
        Category::Nominal if config.use_runtime_nominal => {
            Extraction::Nominal(nominal::extract(values))
        }
        _ => Extraction::Plain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(strs: &[&str]) -> Column {
        Column::from_values(strs.iter().map(|s| s.as_bytes()))
    }

    #[test]
    fn duplication_rate_basics() {
        assert_eq!(duplication_rate(&Column::new()), 0.0);
        assert_eq!(duplication_rate(&v(&["a", "b", "c"])), 0.0);
        assert!((duplication_rate(&v(&["a", "a", "b", "b"])) - 0.5).abs() < 1e-9);
        assert!((duplication_rate(&v(&["a", "a", "a", "a"])) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn categorization_uses_threshold() {
        let cfg = LogGrepConfig::default();
        assert_eq!(categorize(&v(&["a", "b", "c", "d"]), &cfg), Category::Real);
        assert_eq!(
            categorize(&v(&["a", "a", "a", "b"]), &cfg),
            Category::Nominal
        );
    }

    #[test]
    fn small_vectors_stay_plain() {
        let cfg = LogGrepConfig::default();
        let values = v(&["blk_1", "blk_2", "blk_3"]);
        assert!(matches!(
            extract_vector(&values, &cfg, 0),
            Extraction::Plain
        ));
    }

    #[test]
    fn toggles_disable_extraction() {
        let owned: Vec<Vec<u8>> = (0..100).map(|i| format!("blk_{i}").into_bytes()).collect();
        let values = Column::from_values(owned.iter().map(|v| v.as_slice()));
        let cfg = LogGrepConfig::sp();
        assert!(matches!(
            extract_vector(&values, &cfg, 0),
            Extraction::Plain
        ));
    }

    #[test]
    fn real_extraction_is_deterministic() {
        let owned: Vec<Vec<u8>> = (0..200)
            .map(|i| format!("blk_{:04x}F8{}", i * 37 % 4096, i % 10).into_bytes())
            .collect();
        let values = Column::from_values(owned.iter().map(|v| v.as_slice()));
        let cfg = LogGrepConfig::default();
        let a = match extract_vector(&values, &cfg, 7) {
            Extraction::Real(e) => e.pattern.display(),
            other => panic!("expected real extraction, got {other:?}"),
        };
        let b = match extract_vector(&values, &cfg, 7) {
            Extraction::Real(e) => e.pattern.display(),
            _ => unreachable!(),
        };
        assert_eq!(a, b);
    }
}
