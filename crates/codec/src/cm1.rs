//! An order-1 context-model codec: every byte is range-coded through an
//! adaptive bit tree selected by the previous byte.
//!
//! This is the repository's stand-in for the **PPM-class** compressors the
//! paper cites for *offline* logs (§1 [10]): no LZ parsing at all, just a
//! statistical model — the slowest codec here and often the strongest on
//! plain text, which is exactly the offline-tier trade-off. It is not used
//! by LogGrep's near-line path (LZMA-class wins there because Capsule
//! payloads are highly repetitive), but the `offline` configuration knob
//! and the codec benches exercise it.

use crate::rangecoder::{BitTree, RangeDecoder, RangeEncoder};
use crate::varint;
use crate::{Codec, CodecError};

/// The order-1 context-model codec. See the [module docs](self).
#[derive(Debug, Default, Clone, Copy)]
pub struct Cm1;

/// One 8-bit adaptive tree per previous-byte context.
fn fresh_model() -> Vec<BitTree> {
    (0..256).map(|_| BitTree::new(8)).collect()
}

impl Codec for Cm1 {
    fn name(&self) -> &'static str {
        "cm1"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 3 + 16);
        varint::put_uvarint(&mut out, input.len() as u64);
        if input.is_empty() {
            return out;
        }
        let mut model = fresh_model();
        let mut enc = RangeEncoder::new();
        let mut prev = 0u8;
        for &b in input {
            model[prev as usize].encode(&mut enc, b as u32);
            prev = b;
        }
        out.extend_from_slice(&enc.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(input, &mut out)?;
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let (expected_len, consumed) = varint::get_uvarint(input)
            .ok_or_else(|| CodecError::new("cm1: truncated header"))?;
        let expected_len = expected_len as usize;
        if expected_len == 0 {
            return Ok(());
        }
        let mut dec = RangeDecoder::new(input.get(consumed..).unwrap_or_default())?;
        let mut model = fresh_model();
        // Cap the preallocation: the declared length is untrusted input.
        out.reserve(expected_len.min(1 << 20));
        let mut prev = 0u8;
        while out.len() < expected_len {
            if dec.overrun() {
                return Err(CodecError::new("cm1: input exhausted"));
            }
            // lint:allow(no-panic-in-decode) — model has 256 contexts; prev is a u8
            let b = model[prev as usize].decode(&mut dec) as u8;
            out.push(b);
            prev = b;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deflate, LzmaLite};

    fn roundtrip(data: &[u8]) {
        let c = Cm1;
        let packed = c.compress(data);
        assert_eq!(c.decompress(&packed).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"banana banana banana");
        roundtrip(&vec![b'\xfe'; 10_000]);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        roundtrip(&data);
    }

    #[test]
    fn strong_on_plain_text_weak_on_repeats() {
        // Order-1 modeling beats deflate on short-range-structured text
        // without long repeats...
        let mut text = Vec::new();
        let mut state = 7u32;
        for _ in 0..30_000 {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            let w = ["alpha", "beta", "gamma", "delta", "epsilon"][(state >> 16) as usize % 5];
            text.extend_from_slice(w.as_bytes());
            text.push(b' ');
        }
        let cm = Cm1.compress(&text).len();
        assert!(cm < text.len() / 2, "cm1 {} vs raw {}", cm, text.len());
        // ... but LZ-class codecs win when the data is one long repeat.
        let repeats = b"0123456789abcdefghijklmnopqrstuvwxyz".repeat(500);
        let cm_r = Cm1.compress(&repeats).len();
        let lz_r = LzmaLite::default().compress(&repeats).len();
        assert!(lz_r < cm_r, "lzma {} should beat cm1 {} on repeats", lz_r, cm_r);
        let _ = Deflate::default();
    }

    #[test]
    fn corrupt_input_is_error_not_panic() {
        let packed = Cm1.compress(b"some text to mangle badly");
        for cut in 0..packed.len() {
            let _ = Cm1.decompress(&packed[..cut]);
        }
        let mut bad = packed.clone();
        for i in 0..bad.len() {
            bad[i] ^= 0x3c;
            let _ = Cm1.decompress(&bad);
            bad[i] ^= 0x3c;
        }
    }
}
