//! An LZMA-like codec: LZ77 over a 4 MiB window + adaptive range coding with
//! context modeling.
//!
//! This is the repository's stand-in for **LZMA/7-zip**, which the paper's
//! Packer uses as the second-stage compressor for Capsules (§3). The model
//! follows LZMA's structure in miniature:
//!
//! * a 3-state token context (`after literal` / `after match` / `after rep`),
//! * literals coded through 8 context-selected 8-bit trees (high 3 bits of
//!   the previous byte, LZMA's `lc = 3`),
//! * a repeat-distance slot (`rep0`) with an `is_rep` flag,
//! * LZMA's three-band length coding (3-bit / 4-bit / 8-bit trees), and
//! * distance slots (6-bit tree) with direct footer bits.
//!
//! It is slower than [`crate::Deflate`] and compresses better, which is the
//! relationship the paper's evaluation depends on.

use crate::lz77::{Lz77Params, MatchFinder, Token};
use crate::rangecoder::{BitTree, Prob, RangeDecoder, RangeEncoder};
use crate::varint;
use crate::{Codec, CodecError};

const MIN_MATCH: u32 = 2;
const NUM_STATES: usize = 3;
const STATE_LIT: usize = 0;
const STATE_MATCH: usize = 1;
const STATE_REP: usize = 2;
/// Number of literal contexts (high 3 bits of previous byte).
const LIT_CTX: usize = 8;

/// Match-length coder: LZMA's low/mid/high three-band scheme.
///
/// `len - MIN_MATCH` is coded as: `0..8` via a 3-bit tree, `8..24` via a
/// 4-bit tree, `24..280` via an 8-bit tree.
struct LenCoder {
    choice: Prob,
    choice2: Prob,
    low: BitTree,
    mid: BitTree,
    high: BitTree,
}

impl LenCoder {
    fn new() -> Self {
        Self {
            choice: Prob::default(),
            choice2: Prob::default(),
            low: BitTree::new(3),
            mid: BitTree::new(4),
            high: BitTree::new(8),
        }
    }

    fn encode(&mut self, enc: &mut RangeEncoder, len: u32) {
        let v = len - MIN_MATCH;
        if v < 8 {
            enc.encode_bit(&mut self.choice, 0);
            self.low.encode(enc, v);
        } else if v < 8 + 16 {
            enc.encode_bit(&mut self.choice, 1);
            enc.encode_bit(&mut self.choice2, 0);
            self.mid.encode(enc, v - 8);
        } else {
            enc.encode_bit(&mut self.choice, 1);
            enc.encode_bit(&mut self.choice2, 1);
            self.high.encode(enc, v - 24);
        }
    }

    fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let v = if dec.decode_bit(&mut self.choice) == 0 {
            self.low.decode(dec)
        } else if dec.decode_bit(&mut self.choice2) == 0 {
            self.mid.decode(dec) + 8
        } else {
            self.high.decode(dec) + 24
        };
        v + MIN_MATCH
    }
}

/// Maps a zero-based distance value to its slot (LZMA's dist-slot scheme).
#[inline]
fn dist_slot(v: u32) -> u32 {
    if v < 4 {
        v
    } else {
        let bits = 31 - v.leading_zeros();
        (bits << 1) | ((v >> (bits - 1)) & 1)
    }
}

/// The LZMA-like codec. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct LzmaLite {
    params: Lz77Params,
}

impl Default for LzmaLite {
    fn default() -> Self {
        Self {
            params: Lz77Params::LZMA,
        }
    }
}

impl LzmaLite {
    /// Creates a codec with custom LZ77 parameters.
    pub fn with_params(params: Lz77Params) -> Self {
        assert!(params.min_match >= MIN_MATCH);
        assert!(params.max_match <= MIN_MATCH + 8 + 16 + 255);
        Self { params }
    }
}

/// All adaptive contexts, shared in shape between encoder and decoder.
struct Model {
    is_match: [Prob; NUM_STATES],
    is_rep: [Prob; NUM_STATES],
    literals: Vec<BitTree>,
    len: LenCoder,
    rep_len: LenCoder,
    dist_slot: BitTree,
}

impl Model {
    fn new() -> Self {
        Self {
            is_match: [Prob::default(); NUM_STATES],
            is_rep: [Prob::default(); NUM_STATES],
            literals: (0..LIT_CTX).map(|_| BitTree::new(8)).collect(),
            len: LenCoder::new(),
            rep_len: LenCoder::new(),
            dist_slot: BitTree::new(6),
        }
    }

    #[inline]
    fn lit_ctx(prev_byte: u8) -> usize {
        (prev_byte >> 5) as usize
    }
}

impl Codec for LzmaLite {
    fn name(&self) -> &'static str {
        "lzma-lite"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 3 + 64);
        varint::put_uvarint(&mut out, input.len() as u64);
        if input.is_empty() {
            return out;
        }
        let tokens = MatchFinder::new(input, self.params).tokenize();

        let mut model = Model::new();
        let mut enc = RangeEncoder::new();
        let mut state = STATE_LIT;
        let mut rep0: u32 = 0; // Last match distance; 0 = none yet.
        let mut pos = 0usize;
        for t in &tokens {
            match *t {
                Token::Literal(b) => {
                    enc.encode_bit(&mut model.is_match[state], 0);
                    let prev = if pos == 0 { 0 } else { input[pos - 1] };
                    model.literals[Model::lit_ctx(prev)].encode(&mut enc, b as u32);
                    state = STATE_LIT;
                    pos += 1;
                }
                Token::Match { len, dist } => {
                    enc.encode_bit(&mut model.is_match[state], 1);
                    if dist == rep0 && rep0 != 0 {
                        enc.encode_bit(&mut model.is_rep[state], 1);
                        model.rep_len.encode(&mut enc, len);
                        state = STATE_REP;
                    } else {
                        enc.encode_bit(&mut model.is_rep[state], 0);
                        model.len.encode(&mut enc, len);
                        let v = dist - 1;
                        let slot = dist_slot(v);
                        model.dist_slot.encode(&mut enc, slot);
                        if slot >= 4 {
                            let nbits = (slot >> 1) - 1;
                            let base = (2 | (slot & 1)) << nbits;
                            enc.encode_direct(v - base, nbits);
                        }
                        rep0 = dist;
                        state = STATE_MATCH;
                    }
                    pos += len as usize;
                }
            }
        }
        out.extend_from_slice(&enc.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(input, &mut out)?;
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let (expected_len, consumed) = varint::get_uvarint(input)
            .ok_or_else(|| CodecError::new("lzma-lite: truncated header"))?;
        let expected_len = expected_len as usize;
        if expected_len == 0 {
            return Ok(());
        }
        let mut dec = RangeDecoder::new(input.get(consumed..).unwrap_or_default())?;
        let mut model = Model::new();
        let mut state = STATE_LIT;
        let mut rep0: u32 = 0;
        // Cap the preallocation: the declared length is untrusted input.
        out.reserve(expected_len.min(1 << 20));
        while out.len() < expected_len {
            if dec.overrun() {
                return Err(CodecError::new("lzma-lite: input exhausted"));
            }
            // lint:allow(no-panic-in-decode) — state is one of the STATE_* constants, all within the model arrays
            if dec.decode_bit(&mut model.is_match[state]) == 0 {
                let prev = out.last().copied().unwrap_or(0);
                // lint:allow(no-panic-in-decode) — lit_ctx reduces prev into the literal-table range
                let b = model.literals[Model::lit_ctx(prev)].decode(&mut dec);
                out.push(b as u8);
                state = STATE_LIT;
            } else {
                // lint:allow(no-panic-in-decode) — state is one of the STATE_* constants, all within the model arrays
                let (len, dist) = if dec.decode_bit(&mut model.is_rep[state]) == 1 {
                    let len = model.rep_len.decode(&mut dec);
                    state = STATE_REP;
                    (len, rep0)
                } else {
                    let len = model.len.decode(&mut dec);
                    let slot = model.dist_slot.decode(&mut dec);
                    let v = if slot < 4 {
                        slot
                    } else {
                        let nbits = (slot >> 1) - 1;
                        let base = (2 | (slot & 1)) << nbits;
                        base + dec.decode_direct(nbits)
                    };
                    rep0 = v + 1;
                    state = STATE_MATCH;
                    (len, v + 1)
                };
                let dist = dist as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::new("lzma-lite: distance out of range"));
                }
                let len = len as usize;
                if out.len() + len > expected_len {
                    return Err(CodecError::new("lzma-lite: output exceeds declared length"));
                }
                let start = out.len() - dist;
                for i in 0..len {
                    // lint:allow(no-panic-in-decode) — dist ≤ out.len() above; out grows past start+i before each read
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Deflate;

    fn roundtrip(data: &[u8]) {
        let c = LzmaLite::default();
        let packed = c.compress(data);
        assert_eq!(c.decompress(&packed).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"hello hello hello hello");
        roundtrip(&vec![b'q'; 200_000]);
    }

    #[test]
    fn roundtrip_log_like_text() {
        let mut data = Vec::new();
        for i in 0..3000 {
            data.extend_from_slice(
                format!("T{i} bk.{:02X}.{} read state: SUC#{:04}\n", i % 256, i % 16, i % 10000)
                    .as_bytes(),
            );
        }
        roundtrip(&data);
    }

    #[test]
    fn beats_deflate_on_structured_text() {
        // The central codec property the paper relies on: the LZMA stand-in
        // out-compresses the gzip stand-in on repetitive log text.
        let mut data = Vec::new();
        for i in 0..5000 {
            data.extend_from_slice(
                format!(
                    "2021-01-11 10:{:02}:{:02}.{:03} INFO /root/usr/admin/task{} done code=0\n",
                    i / 3600 % 60,
                    i % 60,
                    i % 1000,
                    i % 97
                )
                .as_bytes(),
            );
        }
        let lzma = LzmaLite::default().compress(&data);
        let defl = Deflate::default().compress(&data);
        assert!(
            lzma.len() < defl.len(),
            "lzma-lite ({}) should beat deflate ({})",
            lzma.len(),
            defl.len()
        );
    }

    #[test]
    fn roundtrip_pseudo_random() {
        let mut state = 0xdead_beefu32;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state & 0xff) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_input_is_error_not_panic() {
        let c = LzmaLite::default();
        let mut packed = c.compress(b"abcabcabcabc abcabcabcabc zzzz");
        for i in 0..packed.len() {
            packed[i] ^= 0x55;
            let _ = c.decompress(&packed);
            packed[i] ^= 0x55;
        }
        for cut in 0..packed.len() {
            let _ = c.decompress(&packed[..cut]);
        }
    }

    #[test]
    fn dist_slot_boundaries() {
        assert_eq!(dist_slot(0), 0);
        assert_eq!(dist_slot(1), 1);
        assert_eq!(dist_slot(2), 2);
        assert_eq!(dist_slot(3), 3);
        assert_eq!(dist_slot(4), 4);
        assert_eq!(dist_slot(5), 4);
        assert_eq!(dist_slot(6), 5);
        assert_eq!(dist_slot(7), 5);
        assert_eq!(dist_slot(8), 6);
        // Slot for the largest 4 MiB-window distance stays within the 6-bit tree.
        assert!(dist_slot((1 << 22) - 1) < 64);
    }
}
