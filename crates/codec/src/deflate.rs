//! A DEFLATE-like codec: LZ77 over a 32 KiB window + canonical Huffman.
//!
//! This is the repository's stand-in for **gzip** (the `ggrep` baseline of
//! the paper compresses log blocks with gzip). The container format is our
//! own — a varint length header, two nibble-packed code-length tables, and a
//! single Huffman-coded block — but the length/distance alphabets and the
//! 32 KiB window are DEFLATE's, so ratio and speed land in gzip territory.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{self, Decoder, Encoder};
use crate::lz77::{Lz77Params, MatchFinder, Token};
use crate::varint;
use crate::{Codec, CodecError};

/// Number of literal/length symbols: 256 literals + end-of-block + 29 lengths.
const NUM_LITLEN: usize = 286;
/// End-of-block symbol.
const EOB: usize = 256;
/// Number of distance symbols.
const NUM_DIST: usize = 30;

/// Base match length for each length code (symbol 257 + i).
const LEN_BASE: [u32; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for each length code.
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base distance for each distance code.
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for each distance code.
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

/// Maps a match length (3..=258) to `(code_index, extra_bits_value)`.
#[inline]
fn length_code(len: u32) -> (usize, u32) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan over 29 entries is fine; lengths are heavily skewed small.
    for i in (0..29).rev() {
        if len >= LEN_BASE[i] {
            return (i, len - LEN_BASE[i]);
        }
    }
    unreachable!("length below minimum")
}

/// Maps a distance (1..=32768) to `(code_index, extra_bits_value)`.
#[inline]
fn dist_code(dist: u32) -> (usize, u32) {
    debug_assert!((1..=32768).contains(&dist));
    for i in (0..30).rev() {
        if dist >= DIST_BASE[i] {
            return (i, dist - DIST_BASE[i]);
        }
    }
    unreachable!("distance below minimum")
}

/// The DEFLATE-like codec. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct Deflate {
    params: Lz77Params,
}

impl Default for Deflate {
    fn default() -> Self {
        Self {
            params: Lz77Params::DEFLATE,
        }
    }
}

impl Deflate {
    /// Creates a codec with custom LZ77 parameters (window must stay within
    /// the 32 KiB distance alphabet).
    pub fn with_params(params: Lz77Params) -> Self {
        assert!(params.window <= 32 * 1024, "deflate window limit is 32 KiB");
        assert!(params.min_match >= 3 && params.max_match <= 258);
        Self { params }
    }
}

fn write_len_table(w: &mut BitWriter, lens: &[u32]) {
    for &l in lens {
        w.write_bits(l as u64, 4);
    }
}

fn read_len_table(r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>, CodecError> {
    (0..n).map(|_| Ok(r.read_bits(4)? as u32)).collect()
}

impl Codec for Deflate {
    fn name(&self) -> &'static str {
        "deflate"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 64);
        varint::put_uvarint(&mut out, input.len() as u64);
        if input.is_empty() {
            return out;
        }
        let tokens = MatchFinder::new(input, self.params).tokenize();

        // Gather symbol frequencies.
        let mut litlen_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        for t in &tokens {
            match *t {
                Token::Literal(b) => litlen_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    litlen_freq[257 + length_code(len).0] += 1;
                    dist_freq[dist_code(dist).0] += 1;
                }
            }
        }
        litlen_freq[EOB] += 1;

        let litlen_lens = huffman::code_lengths(&litlen_freq);
        let dist_lens = huffman::code_lengths(&dist_freq);
        let litlen_enc = Encoder::from_lengths(&litlen_lens);
        let dist_enc = Encoder::from_lengths(&dist_lens);

        let mut w = BitWriter::new();
        write_len_table(&mut w, &litlen_lens);
        write_len_table(&mut w, &dist_lens);
        for t in &tokens {
            match *t {
                Token::Literal(b) => litlen_enc.encode(&mut w, b as usize),
                Token::Match { len, dist } => {
                    let (lc, lextra) = length_code(len);
                    litlen_enc.encode(&mut w, 257 + lc);
                    w.write_bits(lextra as u64, LEN_EXTRA[lc]);
                    let (dc, dextra) = dist_code(dist);
                    dist_enc.encode(&mut w, dc);
                    w.write_bits(dextra as u64, DIST_EXTRA[dc]);
                }
            }
        }
        litlen_enc.encode(&mut w, EOB);
        out.extend_from_slice(&w.finish());
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(input, &mut out)?;
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let (expected_len, consumed) = varint::get_uvarint(input)
            .ok_or_else(|| CodecError::new("deflate: truncated header"))?;
        let expected_len = expected_len as usize;
        if expected_len == 0 {
            return Ok(());
        }
        let mut r = BitReader::new(input.get(consumed..).unwrap_or_default());
        let litlen_lens = read_len_table(&mut r, NUM_LITLEN)?;
        let dist_lens = read_len_table(&mut r, NUM_DIST)?;
        let litlen_dec = Decoder::from_lengths(&litlen_lens)?;
        let dist_dec = Decoder::from_lengths(&dist_lens)?;

        // Cap the preallocation: the declared length is untrusted input.
        out.reserve(expected_len.min(1 << 20));
        loop {
            let sym = litlen_dec.decode(&mut r)? as usize;
            if sym == EOB {
                break;
            }
            if sym < 256 {
                out.push(sym as u8);
            } else {
                let lc = sym - 257;
                let (base, extra) = match (LEN_BASE.get(lc), LEN_EXTRA.get(lc)) {
                    (Some(&b), Some(&e)) => (b, e),
                    _ => return Err(CodecError::new("deflate: invalid length code")),
                };
                let ext = r.read_bits(extra)? as u32;
                let len = base + ext;
                let dc = dist_dec.decode(&mut r)? as usize;
                let (dbase, dextra) = match (DIST_BASE.get(dc), DIST_EXTRA.get(dc)) {
                    (Some(&b), Some(&e)) => (b, e),
                    _ => return Err(CodecError::new("deflate: invalid distance code")),
                };
                let dext = r.read_bits(dextra)? as u32;
                let dsum = dbase + dext;
                let dist = dsum as usize;
                if dist == 0 || dist > out.len() {
                    return Err(CodecError::new("deflate: distance out of range"));
                }
                let start = out.len() - dist;
                for i in 0..len as usize {
                    // lint:allow(no-panic-in-decode) — dist ≤ out.len() above; out grows past start+i before each read
                    let b = out[start + i];
                    out.push(b);
                }
            }
            if out.len() > expected_len {
                return Err(CodecError::new("deflate: output exceeds declared length"));
            }
        }
        if out.len() != expected_len {
            return Err(CodecError::new(format!(
                "deflate: length mismatch (declared {expected_len}, got {})",
                out.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = Deflate::default();
        let packed = c.compress(data);
        assert_eq!(c.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello hello hello hello");
        roundtrip(&vec![b'z'; 100_000]);
    }

    #[test]
    fn roundtrip_log_like_text() {
        let mut data = Vec::new();
        for i in 0..2000 {
            data.extend_from_slice(
                format!("2021-01-{:02} INFO write to file:/tmp/1FF8{:04X}.log ok\n", i % 28 + 1, i).as_bytes(),
            );
        }
        let c = Deflate::default();
        let packed = c.compress(&data);
        assert!(
            packed.len() * 8 < data.len(),
            "ratio too poor: {} -> {}",
            data.len(),
            packed.len()
        );
        assert_eq!(c.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn all_byte_values() {
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        roundtrip(&data);
    }

    #[test]
    fn corrupt_input_is_error_not_panic() {
        let c = Deflate::default();
        let mut packed = c.compress(b"some compressible data some compressible data");
        // Flip bits across the buffer; decompression must never panic.
        for i in 0..packed.len() {
            packed[i] ^= 0xff;
            let _ = c.decompress(&packed);
            packed[i] ^= 0xff;
        }
        // Truncations too.
        for cut in 0..packed.len() {
            let _ = c.decompress(&packed[..cut]);
        }
    }

    #[test]
    fn length_code_boundaries() {
        assert_eq!(length_code(3), (0, 0));
        assert_eq!(length_code(10), (7, 0));
        assert_eq!(length_code(11), (8, 0));
        assert_eq!(length_code(12), (8, 1));
        assert_eq!(length_code(258), (28, 0));
    }

    #[test]
    fn dist_code_boundaries() {
        assert_eq!(dist_code(1), (0, 0));
        assert_eq!(dist_code(4), (3, 0));
        assert_eq!(dist_code(5), (4, 0));
        assert_eq!(dist_code(6), (4, 1));
        assert_eq!(dist_code(32768), (29, 8191));
    }
}
