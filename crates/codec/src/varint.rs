//! LEB128-style unsigned varints, used for self-framing codec headers and by
//! the wire formats of the other crates.

/// Appends `value` to `out` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 varint from the front of `input`.
///
/// Returns `(value, bytes_consumed)`, or `None` if the input is truncated or
/// the varint overflows 64 bits.
pub fn get_uvarint(input: &[u8]) -> Option<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if shift >= 64 {
            return None;
        }
        let chunk = (byte & 0x7f) as u64;
        // Reject bits that would be shifted out of range.
        if shift == 63 && chunk > 1 {
            return None;
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_edge_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            let (got, n) = get_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 300);
        assert!(get_uvarint(&buf[..1]).is_none());
        assert!(get_uvarint(&[]).is_none());
    }

    #[test]
    fn overlong_input_is_rejected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let buf = [0xffu8; 11];
        assert!(get_uvarint(&buf).is_none());
    }

    #[test]
    fn trailing_bytes_are_not_consumed() {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 5);
        buf.push(0xaa);
        let (v, n) = get_uvarint(&buf).unwrap();
        assert_eq!(v, 5);
        assert_eq!(n, 1);
    }
}
