//! From-scratch compression codecs used as LogGrep's compression substrate.
//!
//! The LogGrep paper compresses Capsules with LZMA (7-zip), compares against
//! a gzip baseline, and against CLP which uses zstd as its second-stage
//! compressor. None of those implementations are available to this offline
//! reproduction, so this crate implements three codecs with the same
//! *relative* characteristics from first principles:
//!
//! * [`Deflate`] — LZ77 (32 KiB window) + canonical Huffman coding. Plays the
//!   role of **gzip**: moderate ratio, fast.
//! * [`LzmaLite`] — LZ77 (1 MiB window) + adaptive binary range coder with
//!   context modeling. Plays the role of **LZMA**: best ratio, slowest.
//! * [`FastLz`] — byte-oriented LZ77 in an LZ4-style token format. Plays the
//!   role of **zstd** in CLP: fastest, lowest ratio.
//!
//! All codecs are self-framing: the compressed buffer records the
//! uncompressed length, so [`Codec::decompress`] needs no side information.
//!
//! # Examples
//!
//! ```
//! use codec::{Codec, Deflate};
//!
//! let data = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
//! let codec = Deflate::default();
//! let packed = codec.compress(data);
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bitio;
pub mod cm1;
pub mod deflate;
pub mod fastlz;
pub mod huffman;
pub mod lz77;
pub mod lzma_lite;
pub mod rangecoder;
pub mod varint;

use std::fmt;

pub use cm1::Cm1;
pub use deflate::Deflate;
pub use fastlz::FastLz;
pub use lzma_lite::LzmaLite;

/// Error produced when decompressing a corrupt or truncated buffer.
///
/// Compression itself is infallible: every byte sequence can be compressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable description of what went wrong.
    pub reason: String,
}

impl CodecError {
    /// Creates a new error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

/// A lossless, self-framing compression codec.
///
/// Implementations must guarantee `decompress(&compress(x)) == x` for every
/// input `x`, and must never panic on arbitrary (possibly corrupt)
/// `decompress` input — corruption is reported via [`CodecError`].
pub trait Codec: Send + Sync {
    /// Short stable name used in experiment output (e.g. `"lzma-lite"`).
    fn name(&self) -> &'static str;

    /// Compresses `input` into a self-framing buffer.
    fn compress(&self, input: &[u8]) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or corrupt.
    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError>;

    /// Decompresses into a caller-provided buffer, reusing its capacity.
    ///
    /// `out` is cleared first; on error its contents are unspecified. The
    /// built-in codecs all override this with an allocation-free decode so
    /// a query session can recycle one arena buffer across Capsules; the
    /// default forwards to [`Codec::decompress`] and moves the result.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or corrupt.
    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        *out = self.decompress(input)?;
        Ok(())
    }

    /// [`Codec::compress`] plus per-codec byte accounting.
    ///
    /// When telemetry is enabled, records `codec.<name>.compress.bytes_in`
    /// / `.bytes_out` counters; otherwise identical to `compress`. Pipeline
    /// call sites (the Capsule packer) use this so `--trace` can break
    /// stored bytes down by codec.
    fn compress_tracked(&self, input: &[u8]) -> Vec<u8> {
        let out = self.compress(input);
        if telemetry::enabled() {
            let name = self.name();
            telemetry::counter(&format!("codec.{name}.compress.bytes_in")).add(input.len() as u64);
            telemetry::counter(&format!("codec.{name}.compress.bytes_out")).add(out.len() as u64);
        }
        out
    }

    /// [`Codec::decompress`] plus per-codec byte accounting
    /// (`codec.<name>.decompress.bytes_in` / `.bytes_out`).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or corrupt.
    fn decompress_tracked(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let out = self.decompress(input)?;
        if telemetry::enabled() {
            let name = self.name();
            telemetry::counter(&format!("codec.{name}.decompress.bytes_in"))
                .add(input.len() as u64);
            telemetry::counter(&format!("codec.{name}.decompress.bytes_out"))
                .add(out.len() as u64);
        }
        Ok(out)
    }

    /// [`Codec::decompress_into`] plus per-codec byte accounting
    /// (`codec.<name>.decompress.bytes_in` / `.bytes_out`).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] if the buffer is truncated or corrupt.
    fn decompress_tracked_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        self.decompress_into(input, out)?;
        if telemetry::enabled() {
            let name = self.name();
            telemetry::counter(&format!("codec.{name}.decompress.bytes_in"))
                .add(input.len() as u64);
            telemetry::counter(&format!("codec.{name}.decompress.bytes_out"))
                .add(out.len() as u64);
        }
        Ok(())
    }
}

/// The identity codec: stores data uncompressed (behind a length header).
///
/// Used by ablations and as the stored-fields format of the MiniEs baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct Store;

impl Codec for Store {
    fn name(&self) -> &'static str {
        "store"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() + 5);
        varint::put_uvarint(&mut out, input.len() as u64);
        out.extend_from_slice(input);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(input, &mut out)?;
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let (len, consumed) = varint::get_uvarint(input)
            .ok_or_else(|| CodecError::new("store: truncated length header"))?;
        let body = input.get(consumed..).unwrap_or_default();
        if body.len() != len as usize {
            return Err(CodecError::new(format!(
                "store: length mismatch (header {} vs body {})",
                len,
                body.len()
            )));
        }
        out.extend_from_slice(body);
        Ok(())
    }
}

/// Enumerates the codecs by name, for CLI/bench selection.
///
/// Returns `None` for an unknown name.
pub fn by_name(name: &str) -> Option<Box<dyn Codec>> {
    match name {
        "store" => Some(Box::new(Store)),
        "deflate" | "gzip" => Some(Box::new(Deflate::default())),
        "lzma-lite" | "lzma" => Some(Box::new(LzmaLite::default())),
        "fastlz" | "zstd" => Some(Box::new(FastLz::default())),
        "cm1" | "ppm" => Some(Box::new(Cm1)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip() {
        let c = Store;
        for data in [&b""[..], b"a", b"hello world"] {
            assert_eq!(c.decompress(&c.compress(data)).unwrap(), data);
        }
    }

    #[test]
    fn store_rejects_truncation() {
        let c = Store;
        let packed = c.compress(b"hello world");
        assert!(c.decompress(&packed[..packed.len() - 1]).is_err());
        assert!(c.decompress(&[]).is_err());
    }

    #[test]
    fn tracked_hooks_record_per_codec_bytes() {
        telemetry::set_enabled(true);
        let c = Store;
        let data = b"tracked roundtrip payload";
        let packed = c.compress_tracked(data);
        let unpacked = c.decompress_tracked(&packed).unwrap();
        assert_eq!(unpacked, data);
        telemetry::set_enabled(false);
        let snap = telemetry::snapshot();
        assert!(snap.counter("codec.store.compress.bytes_in") >= data.len() as u64);
        assert!(snap.counter("codec.store.compress.bytes_out") >= packed.len() as u64);
        assert!(snap.counter("codec.store.decompress.bytes_out") >= data.len() as u64);
    }

    #[test]
    fn by_name_resolves_all() {
        for name in ["store", "deflate", "gzip", "lzma-lite", "fastlz", "zstd", "cm1", "ppm"] {
            assert!(by_name(name).is_some(), "missing codec {name}");
        }
        assert!(by_name("bogus").is_none());
    }

    #[test]
    fn decompress_into_reuses_dirty_buffers() {
        // A recycled arena buffer arrives full of stale bytes; every codec
        // must clear it and produce the same output as `decompress`.
        let data: Vec<u8> = (0..997u32).map(|i| (i * 31 % 251) as u8).collect();
        for name in ["store", "deflate", "lzma-lite", "fastlz", "cm1"] {
            let c = by_name(name).unwrap();
            let packed = c.compress(&data);
            let mut buf = vec![0xAB; 4096];
            c.decompress_into(&packed, &mut buf).unwrap();
            assert_eq!(buf, data, "codec {name}");
            // Empty payloads must clear the buffer too.
            let empty = c.compress(b"");
            c.decompress_into(&empty, &mut buf).unwrap();
            assert!(buf.is_empty(), "codec {name}");
        }
    }
}
