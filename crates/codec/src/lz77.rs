//! LZ77 match finding with hash chains and one-step lazy matching.
//!
//! Produces a token stream of literals and `(length, distance)` matches that
//! the [`crate::deflate`] and [`crate::lzma_lite`] codecs entropy-code.

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Match length in bytes (>= MIN_MATCH of the parameterization).
        len: u32,
        /// Distance in bytes (1 = previous byte).
        dist: u32,
    },
}

/// Tuning parameters for the match finder.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Params {
    /// Sliding-window size in bytes; distances never exceed this.
    pub window: u32,
    /// Minimum emitted match length.
    pub min_match: u32,
    /// Maximum emitted match length.
    pub max_match: u32,
    /// Maximum hash-chain links followed per position.
    pub max_chain: u32,
    /// Enables one-step lazy matching (better ratio, slower).
    pub lazy: bool,
}

impl Lz77Params {
    /// DEFLATE-like parameters: 32 KiB window, matches 3..=258.
    pub const DEFLATE: Self = Self {
        window: 32 * 1024,
        min_match: 3,
        max_match: 258,
        max_chain: 64,
        lazy: true,
    };

    /// LZMA-like parameters: 4 MiB window, matches 2..=273, deep chains.
    pub const LZMA: Self = Self {
        window: 4 * 1024 * 1024,
        min_match: 2,
        max_match: 273,
        max_chain: 384,
        lazy: true,
    };

    /// Fast parameters: short chains, no lazy matching.
    pub const FAST: Self = Self {
        window: 64 * 1024,
        min_match: 4,
        max_match: 0xffff,
        max_chain: 8,
        lazy: false,
    };
}

const HASH_BITS: u32 = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8], pos: usize) -> usize {
    // Multiplicative hash over 4 bytes; callers guarantee pos + 4 <= len.
    let v = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    (v.wrapping_mul(0x9e37_79b1) >> (32 - HASH_BITS)) as usize
}

/// Hash-chain match finder over a single buffer.
pub struct MatchFinder<'a> {
    data: &'a [u8],
    params: Lz77Params,
    /// head[h] = most recent position with hash h (+1; 0 = none).
    head: Vec<u32>,
    /// prev[pos & mask] = previous position with the same hash (+1; 0 = none).
    prev: Vec<u32>,
    window_mask: usize,
}

impl<'a> MatchFinder<'a> {
    /// Creates a match finder over `data` with the given parameters.
    pub fn new(data: &'a [u8], params: Lz77Params) -> Self {
        let window = params.window.next_power_of_two() as usize;
        Self {
            data,
            params,
            head: vec![0; HASH_SIZE],
            prev: vec![0; window],
            window_mask: window - 1,
        }
    }

    #[inline]
    fn insert(&mut self, pos: usize) {
        if pos + 4 > self.data.len() {
            return;
        }
        let h = hash4(self.data, pos);
        self.prev[pos & self.window_mask] = self.head[h];
        self.head[h] = pos as u32 + 1;
    }

    /// Finds the best match at `pos`, or `None`.
    #[inline]
    fn best_match(&self, pos: usize) -> Option<(u32, u32)> {
        let data = self.data;
        let n = data.len();
        if pos + 4 > n {
            return None;
        }
        let max_len = (self.params.max_match as usize).min(n - pos);
        if max_len < self.params.min_match as usize {
            return None;
        }
        let mut best_len = self.params.min_match as usize - 1;
        let mut best_dist = 0u32;
        let mut cand = self.head[hash4(data, pos)];
        let mut chain = self.params.max_chain;
        while cand != 0 && chain > 0 {
            let cpos = (cand - 1) as usize;
            let dist = pos - cpos;
            if dist > self.params.window as usize || dist == 0 {
                break;
            }
            // Quick reject: check the byte just past the current best.
            if best_len < max_len && data[cpos + best_len] == data[pos + best_len] {
                let len = common_prefix(data, cpos, pos, max_len);
                if len > best_len {
                    best_len = len;
                    best_dist = dist as u32;
                    if len >= max_len {
                        break;
                    }
                }
            }
            cand = self.prev[cpos & self.window_mask];
            chain -= 1;
        }
        if best_dist != 0 {
            Some((best_len as u32, best_dist))
        } else {
            None
        }
    }

    /// Tokenizes the whole buffer.
    pub fn tokenize(mut self) -> Vec<Token> {
        let data = self.data;
        let n = data.len();
        let mut tokens = Vec::with_capacity(n / 4 + 16);
        let mut pos = 0usize;
        while pos < n {
            let found = self.best_match(pos);
            match found {
                Some((len, dist)) => {
                    let mut take = (len, dist);
                    if self.params.lazy && pos + 1 < n {
                        // Peek one position ahead; if a strictly longer match
                        // starts there, emit a literal instead.
                        self.insert(pos);
                        if let Some((len2, dist2)) = self.best_match(pos + 1) {
                            if len2 > len {
                                tokens.push(Token::Literal(data[pos]));
                                pos += 1;
                                take = (len2, dist2);
                            }
                        }
                        tokens.push(Token::Match {
                            len: take.0,
                            dist: take.1,
                        });
                        // Insert positions covered by the match (cap the work
                        // for very long matches).
                        let end = pos + take.0 as usize;
                        let insert_end = end.min(pos + 64);
                        // `pos` may already be inserted; insert is idempotent
                        // enough for a heuristic finder.
                        for p in pos + 1..insert_end {
                            self.insert(p);
                        }
                        pos = end;
                    } else {
                        tokens.push(Token::Match { len, dist });
                        let end = pos + len as usize;
                        let insert_end = end.min(pos + 64);
                        for p in pos..insert_end {
                            self.insert(p);
                        }
                        pos = end;
                    }
                }
                None => {
                    self.insert(pos);
                    tokens.push(Token::Literal(data[pos]));
                    pos += 1;
                }
            }
        }
        tokens
    }
}

/// Longest common prefix of the windows starting at `a` and `b`, capped at
/// `max`. Word-parallel via the shared SWAR kernel: the two windows are
/// plain overlapping-read slices, so comparing them eight bytes at a time
/// is safe even for self-referential matches (`b - a < 8`).
#[inline]
fn common_prefix(data: &[u8], a: usize, b: usize, max: usize) -> usize {
    let wa = data.get(a..data.len().min(a + max)).unwrap_or_default();
    let wb = data.get(b..data.len().min(b + max)).unwrap_or_default();
    strsearch::swar::common_prefix(wa, wb)
}

/// Expands a token stream back into bytes (the shared LZ77 "copy" loop).
///
/// # Errors
///
/// Returns the number of bytes produced so far on an invalid distance.
pub fn expand_into(tokens: &[Token], out: &mut Vec<u8>) -> Result<(), usize> {
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                if dist == 0 || dist > out.len() {
                    return Err(out.len());
                }
                let start = out.len() - dist;
                // Overlapping copies must proceed byte by byte.
                for i in 0..len as usize {
                    // lint:allow(no-panic-in-decode) — dist ≤ out.len() above; out grows past start+i before each read
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], params: Lz77Params) {
        let tokens = MatchFinder::new(data, params).tokenize();
        let mut out = Vec::new();
        expand_into(&tokens, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn roundtrip_text() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox again.";
        roundtrip(data, Lz77Params::DEFLATE);
        roundtrip(data, Lz77Params::LZMA);
        roundtrip(data, Lz77Params::FAST);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        for data in [&b""[..], b"a", b"ab", b"abc", b"aaaa"] {
            roundtrip(data, Lz77Params::DEFLATE);
        }
    }

    #[test]
    fn finds_repeats() {
        let data = b"abcabcabcabcabcabcabcabc";
        let tokens = MatchFinder::new(data, Lz77Params::DEFLATE).tokenize();
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match token: {tokens:?}"
        );
        let literals = tokens
            .iter()
            .filter(|t| matches!(t, Token::Literal(_)))
            .count();
        assert!(literals <= 6, "too many literals: {literals}");
    }

    #[test]
    fn overlapping_match_run() {
        // A run of a single byte compresses as an overlapping dist=1 match.
        let data = vec![b'x'; 1000];
        roundtrip(&data, Lz77Params::DEFLATE);
        let tokens = MatchFinder::new(&data, Lz77Params::DEFLATE).tokenize();
        assert!(tokens.len() < 20);
    }

    #[test]
    fn expand_rejects_bad_distance() {
        let tokens = vec![Token::Match { len: 3, dist: 5 }];
        let mut out = Vec::new();
        assert!(expand_into(&tokens, &mut out).is_err());
    }

    #[test]
    fn roundtrip_pseudo_random() {
        // Deterministic xorshift noise: worst case for matching, must still
        // round-trip as (mostly) literals.
        let mut state = 0x1234_5678u32;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state & 0xff) as u8
            })
            .collect();
        roundtrip(&data, Lz77Params::DEFLATE);
        roundtrip(&data, Lz77Params::LZMA);
    }
}
