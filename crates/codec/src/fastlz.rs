//! A fast byte-oriented LZ77 codec in an LZ4-style token format.
//!
//! This is the repository's stand-in for **zstd**, which CLP uses as its
//! second-stage compressor: much faster than [`crate::Deflate`] and
//! [`crate::LzmaLite`] in both directions, at a lower compression ratio.
//! The format is LZ4's block format in spirit: a token byte packs the
//! literal-run length and match length (with 255-continuation extension
//! bytes), followed by the literals and a 16-bit little-endian match offset.

use crate::lz77::{Lz77Params, MatchFinder, Token};
use crate::varint;
use crate::{Codec, CodecError};

const MIN_MATCH: u32 = 4;

/// The fast LZ codec. See the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct FastLz {
    params: Lz77Params,
}

impl Default for FastLz {
    fn default() -> Self {
        let mut params = Lz77Params::FAST;
        // Offsets are stored in 16 bits, so distances must stay <= 65535.
        params.window = 65_535;
        Self { params }
    }
}

fn put_ext_len(out: &mut Vec<u8>, mut extra: u32) {
    while extra >= 255 {
        out.push(255);
        extra -= 255;
    }
    out.push(extra as u8);
}

fn get_ext_len(input: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut total = 0u32;
    loop {
        let b = *input
            .get(*pos)
            .ok_or_else(|| CodecError::new("fastlz: truncated length extension"))?;
        *pos += 1;
        total = total
            .checked_add(b as u32)
            .ok_or_else(|| CodecError::new("fastlz: length overflow"))?;
        if b != 255 {
            return Ok(total);
        }
    }
}

impl Codec for FastLz {
    fn name(&self) -> &'static str {
        "fastlz"
    }

    fn compress(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        varint::put_uvarint(&mut out, input.len() as u64);
        if input.is_empty() {
            return out;
        }
        let tokens = MatchFinder::new(input, self.params).tokenize();

        // Re-group the token stream into (literal run, match) sequences.
        let mut pos = 0usize; // Position in `input` of the next literal run.
        let mut lit_start = 0usize;
        let flush = |out: &mut Vec<u8>, lit: &[u8], m: Option<(u32, u32)>| {
            let lit_len = lit.len() as u32;
            let lit_nib = lit_len.min(15);
            let (match_stored, match_nib) = match m {
                Some((len, _)) => {
                    let stored = len - MIN_MATCH;
                    (stored, stored.min(15))
                }
                None => (0, 0),
            };
            out.push(((lit_nib as u8) << 4) | match_nib as u8);
            if lit_nib == 15 {
                put_ext_len(out, lit_len - 15);
            }
            out.extend_from_slice(lit);
            if let Some((_, dist)) = m {
                out.extend_from_slice(&(dist as u16).to_le_bytes());
                if match_nib == 15 {
                    put_ext_len(out, match_stored - 15);
                }
            }
        };
        for t in &tokens {
            match *t {
                Token::Literal(_) => pos += 1,
                Token::Match { len, dist } => {
                    flush(&mut out, &input[lit_start..pos], Some((len, dist)));
                    pos += len as usize;
                    lit_start = pos;
                }
            }
        }
        // Trailing literals (possibly empty) terminate the stream.
        flush(&mut out, &input[lit_start..pos], None);
        out
    }

    fn decompress(&self, input: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(input, &mut out)?;
        Ok(out)
    }

    fn decompress_into(&self, input: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        out.clear();
        let (expected_len, consumed) = varint::get_uvarint(input)
            .ok_or_else(|| CodecError::new("fastlz: truncated header"))?;
        let expected_len = expected_len as usize;
        if expected_len == 0 {
            return Ok(());
        }
        // Cap the preallocation: the declared length is untrusted input.
        out.reserve(expected_len.min(1 << 20));
        let mut pos = consumed;
        loop {
            let token = *input
                .get(pos)
                .ok_or_else(|| CodecError::new("fastlz: truncated token"))?;
            pos += 1;
            let mut lit_len = (token >> 4) as u32;
            if lit_len == 15 {
                lit_len += get_ext_len(input, &mut pos)?;
            }
            let lit_end = pos
                .checked_add(lit_len as usize)
                .ok_or_else(|| CodecError::new("fastlz: literal run overflow"))?;
            let lits = input
                .get(pos..lit_end)
                .ok_or_else(|| CodecError::new("fastlz: truncated literals"))?;
            out.extend_from_slice(lits);
            pos = lit_end;
            if out.len() > expected_len {
                return Err(CodecError::new("fastlz: output exceeds declared length"));
            }
            if out.len() == expected_len && pos == input.len() {
                return Ok(());
            }
            let Some((off, _)) = input.get(pos..).and_then(|t| t.split_first_chunk::<2>()) else {
                return Err(CodecError::new("fastlz: truncated offset"));
            };
            let dist = u16::from_le_bytes(*off) as usize;
            pos += 2;
            let mut match_len = (token & 0x0f) as u32;
            if match_len == 15 {
                match_len += get_ext_len(input, &mut pos)?;
            }
            let match_len = match_len + MIN_MATCH;
            if dist == 0 {
                // The final sequence stores no match; a zero distance with a
                // minimal match nibble can only come from that path.
                if pos == input.len() && out.len() == expected_len {
                    return Ok(());
                }
                return Err(CodecError::new("fastlz: zero distance"));
            }
            if dist > out.len() {
                return Err(CodecError::new("fastlz: distance out of range"));
            }
            let match_len = match_len as usize;
            if out.len() + match_len > expected_len {
                return Err(CodecError::new("fastlz: output exceeds declared length"));
            }
            let start = out.len() - dist;
            for i in 0..match_len {
                // lint:allow(no-panic-in-decode) — dist ≤ out.len() above; out grows past start+i before each read
                let b = out[start + i];
                out.push(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = FastLz::default();
        let packed = c.compress(data);
        assert_eq!(c.decompress(&packed).unwrap(), data, "len {}", data.len());
    }

    #[test]
    fn roundtrip_basic() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcd");
        roundtrip(b"hello hello hello hello hello hello");
        roundtrip(&vec![b'r'; 300_000]);
    }

    #[test]
    fn roundtrip_long_literal_runs() {
        // > 15 literals forces the extension-byte path.
        let mut state = 99u32;
        let data: Vec<u8> = (0..1000)
            .map(|_| {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                (state >> 24) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn roundtrip_long_matches() {
        // > 15+4 match length forces the match extension path.
        let mut data = b"0123456789abcdef".to_vec();
        for _ in 0..200 {
            let copy = data.clone();
            data.extend_from_slice(&copy[..copy.len().min(500)]);
        }
        data.truncate(50_000);
        roundtrip(&data);
    }

    #[test]
    fn trailing_literals_at_exact_end() {
        roundtrip(b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaz");
        roundtrip(b"abcabcabcabcabc");
    }

    #[test]
    fn corrupt_input_is_error_not_panic() {
        let c = FastLz::default();
        let packed = c.compress(b"the rain in spain the rain in spain");
        for cut in 0..packed.len() {
            let _ = c.decompress(&packed[..cut]);
        }
        let mut bad = packed.clone();
        for i in 0..bad.len() {
            bad[i] = bad[i].wrapping_add(0x41);
            let _ = c.decompress(&bad);
            bad[i] = bad[i].wrapping_sub(0x41);
        }
    }

    #[test]
    fn is_faster_format_than_deflate_on_ratio_tradeoff() {
        // Sanity: fastlz compresses worse than deflate on log text (it's the
        // speed-oriented codec), but still compresses.
        let mut data = Vec::new();
        for i in 0..3000 {
            data.extend_from_slice(format!("req={} status=OK latency={}us\n", i, i * 7).as_bytes());
        }
        let f = FastLz::default().compress(&data);
        let d = crate::Deflate::default().compress(&data);
        assert!(f.len() < data.len());
        assert!(d.len() < f.len(), "deflate {} vs fastlz {}", d.len(), f.len());
    }
}
