//! Canonical, length-limited Huffman coding.
//!
//! Code lengths are computed with a standard heap-built Huffman tree and then
//! clamped to [`MAX_CODE_LEN`] with a Kraft-sum repair pass, so the resulting
//! lengths always describe a valid prefix code. Codes are assigned
//! canonically (ordered by `(length, symbol)`), which lets the decoder be
//! reconstructed from the length table alone.

use crate::bitio::{BitReader, BitWriter};
use crate::CodecError;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Maximum code length in bits. Matches DEFLATE's limit.
pub const MAX_CODE_LEN: u32 = 15;

/// Computes length-limited Huffman code lengths for the given frequencies.
///
/// Symbols with frequency zero get length zero (no code). If only one symbol
/// has a nonzero frequency it is assigned length 1 so the decoder can always
/// make progress.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    let mut lens = vec![0u32; n];
    let live: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match live.len() {
        0 => return lens,
        1 => {
            lens[live[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Node arena: leaves first, then internal nodes; parent links let us
    // read off depths without building an explicit tree structure.
    let mut parent: Vec<usize> = vec![usize::MAX; live.len()];
    let mut weights: Vec<u64> = live.iter().map(|&i| freqs[i]).collect();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| Reverse((w, i)))
        .collect();
    while heap.len() > 1 {
        let Reverse((w1, a)) = heap.pop().expect("heap has >= 2 items");
        let Reverse((w2, b)) = heap.pop().expect("heap has >= 2 items");
        let id = weights.len();
        weights.push(w1.saturating_add(w2));
        parent.push(usize::MAX);
        parent[a] = id;
        parent[b] = id;
        heap.push(Reverse((weights[id], id)));
    }

    // Depth of each leaf = number of parent hops to the root.
    for (leaf, &sym) in live.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lens[sym] = depth;
    }

    limit_lengths(&mut lens, MAX_CODE_LEN);
    lens
}

/// Clamps code lengths to `max` and repairs the Kraft sum so the lengths
/// still describe a complete-enough prefix code (sum of 2^-len <= 1).
fn limit_lengths(lens: &mut [u32], max: u32) {
    let unit = 1u64 << max; // Represent 2^-len as unit >> len.
    let mut kraft: u64 = lens
        .iter()
        .filter(|&&l| l > 0)
        .map(|&l| unit >> l.min(max))
        .sum();
    for l in lens.iter_mut() {
        if *l > max {
            *l = max;
        }
    }
    // Demote codes (increase length) until the Kraft inequality holds.
    while kraft > unit {
        // Find the longest code shorter than max and lengthen it.
        let victim = (0..lens.len())
            .filter(|&i| lens[i] > 0 && lens[i] < max)
            .max_by_key(|&i| lens[i])
            .expect("kraft overflow implies a code shorter than max exists");
        kraft -= unit >> lens[victim];
        lens[victim] += 1;
        kraft += unit >> lens[victim];
    }
}

/// Encoder table: canonical code bits (LSB-first as written to the stream)
/// and lengths per symbol.
#[derive(Debug, Clone)]
pub struct Encoder {
    codes: Vec<u32>,
    lens: Vec<u32>,
}

impl Encoder {
    /// Builds the canonical encoder from code lengths.
    pub fn from_lengths(lens: &[u32]) -> Self {
        let codes = canonical_codes(lens);
        Self {
            codes,
            lens: lens.to_vec(),
        }
    }

    /// Writes the code for `symbol`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `symbol` has no code (length 0).
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lens[symbol];
        debug_assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(self.codes[symbol] as u64, len);
    }

    /// Length in bits of the code for `symbol` (0 = no code).
    pub fn len_of(&self, symbol: usize) -> u32 {
        self.lens[symbol]
    }
}

/// Assigns canonical codes from lengths. Codes are bit-reversed so they can
/// be written LSB-first and decoded by reading one bit at a time.
fn canonical_codes(lens: &[u32]) -> Vec<u32> {
    let max = lens.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u32; (max + 1) as usize];
    for &l in lens {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u32; (max + 2) as usize];
    let mut code = 0u32;
    for bits in 1..=max {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                reverse_bits(c, l)
            }
        })
        .collect()
}

#[inline]
fn reverse_bits(value: u32, nbits: u32) -> u32 {
    let mut v = value;
    let mut out = 0u32;
    for _ in 0..nbits {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    out
}

/// Decoder built from canonical code lengths.
///
/// Uses the classic canonical decode loop (`first_code`/`first_symbol` per
/// length), reading one bit at a time; at most [`MAX_CODE_LEN`] iterations
/// per symbol.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// count[l] = number of codes of length l.
    count: Vec<u32>,
    /// Symbols sorted by (length, symbol).
    symbols: Vec<u32>,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths oversubscribe the code space (which
    /// would make decoding ambiguous).
    pub fn from_lengths(lens: &[u32]) -> Result<Self, CodecError> {
        let max = lens.iter().copied().max().unwrap_or(0);
        if max > MAX_CODE_LEN {
            return Err(CodecError::new("huffman: code length exceeds limit"));
        }
        let slots = MAX_CODE_LEN as usize;
        let mut count = vec![0u32; slots + 1];
        for &l in lens {
            // `l <= MAX_CODE_LEN` was checked above, so the slot exists.
            if l > 0 {
                if let Some(slot) = count.get_mut(l as usize) {
                    *slot += 1;
                }
            }
        }
        // Validate the Kraft sum.
        let unit = 1u64 << MAX_CODE_LEN;
        let kraft: u64 = (1..=MAX_CODE_LEN)
            .map(|l| u64::from(count.get(l as usize).copied().unwrap_or(0)) << (MAX_CODE_LEN - l))
            .sum();
        if kraft > unit {
            return Err(CodecError::new("huffman: oversubscribed code lengths"));
        }
        let mut symbols: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens.get(s as usize).is_some_and(|&l| l > 0))
            .collect();
        symbols.sort_by_key(|&s| (lens.get(s as usize).copied().unwrap_or(0), s));
        Ok(Self { count, symbols })
    }

    /// Decodes one symbol from the reader.
    ///
    /// # Errors
    ///
    /// Returns an error on truncation or an invalid code.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, CodecError> {
        let mut code: u32 = 0; // Code value, MSB-first semantics.
        let mut first: u32 = 0; // First canonical code of this length.
        let mut index: u32 = 0; // Index of first symbol of this length.
        for len in 1..=MAX_CODE_LEN {
            code |= r.read_bits(1)? as u32;
            let count = self.count.get(len as usize).copied().unwrap_or(0);
            if code < first + count {
                let off = index + (code - first);
                return self
                    .symbols
                    .get(off as usize)
                    .copied()
                    .ok_or_else(|| CodecError::new("huffman: invalid code"));
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(CodecError::new("huffman: invalid code"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(freqs: &[u64], stream: &[usize]) {
        let lens = code_lengths(freqs);
        let enc = Encoder::from_lengths(&lens);
        let dec = Decoder::from_lengths(&lens).unwrap();
        let mut w = BitWriter::new();
        for &s in stream {
            enc.encode(&mut w, s);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &s in stream {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[0, 5, 0], &[1, 1, 1, 1]);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[3, 7], &[0, 1, 1, 0, 1]);
    }

    #[test]
    fn skewed_distribution() {
        let freqs = [1000, 500, 250, 125, 60, 30, 15, 7, 3, 1];
        let stream: Vec<usize> = (0..freqs.len()).cycle().take(200).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn lengths_are_limited() {
        // A Fibonacci-like distribution forces deep trees without a limit.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let next = a + b;
            a = b;
            b = next;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        // Must still be a valid prefix code.
        assert!(Decoder::from_lengths(&lens).is_ok());
        let stream: Vec<usize> = (0..40).collect();
        roundtrip(&freqs, &stream);
    }

    #[test]
    fn kraft_validation_rejects_bad_lengths() {
        // Three codes of length 1 oversubscribe the space.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn optimal_for_uniform() {
        let lens = code_lengths(&[1, 1, 1, 1]);
        assert!(lens.iter().all(|&l| l == 2));
    }

    #[test]
    fn empty_and_zero_freqs() {
        assert!(code_lengths(&[]).is_empty());
        assert_eq!(code_lengths(&[0, 0, 0]), vec![0, 0, 0]);
    }
}
