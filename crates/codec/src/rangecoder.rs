//! Binary range coder with adaptive probability models (LZMA-style).
//!
//! This is the entropy-coding core of [`crate::lzma_lite`]. Probabilities
//! are 11-bit (`0..2048`) and adapt with shift 5, exactly as in LZMA; the
//! carry-propagation scheme (cache byte + pending 0xFF run) is the classic
//! one.

use crate::CodecError;

const PROB_BITS: u32 = 11;
const PROB_INIT: u16 = (1 << PROB_BITS) / 2;
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive binary probability (11-bit, starts at 1/2).
#[derive(Debug, Clone, Copy)]
pub struct Prob(u16);

impl Default for Prob {
    fn default() -> Self {
        Self(PROB_INIT)
    }
}

impl Prob {
    #[inline]
    fn update(&mut self, bit: u32) {
        if bit == 0 {
            self.0 += ((1 << PROB_BITS) - self.0) >> ADAPT_SHIFT;
        } else {
            self.0 -= self.0 >> ADAPT_SHIFT;
        }
    }
}

/// Range encoder writing to an internal buffer.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// Creates an encoder.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32) < 0xff00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            self.out.push(self.cache.wrapping_add(carry));
            for _ in 1..self.cache_size {
                self.out.push(0xffu8.wrapping_add(carry));
            }
            self.cache = (self.low >> 24) as u8;
            self.cache_size = 0;
        }
        self.cache_size += 1;
        // Keep only the low 24 bits before shifting: the byte above them has
        // just been captured in `cache` (or is a pending 0xff accounted for
        // by `cache_size`), and must not re-enter as a carry.
        self.low = (self.low & 0x00ff_ffff) << 8;
    }

    /// Encodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut Prob, bit: u32) {
        let bound = (self.range >> PROB_BITS) * prob.0 as u32;
        if bit == 0 {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        prob.update(bit);
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    /// Encodes `count` bits of `value` (MSB first) at probability 1/2.
    #[inline]
    pub fn encode_direct(&mut self, value: u32, count: u32) {
        for i in (0..count).rev() {
            let bit = (value >> i) & 1;
            self.range >>= 1;
            if bit != 0 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.shift_low();
                self.range <<= 8;
            }
        }
    }

    /// Flushes the coder and returns the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Range decoder over a byte slice.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    input: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Creates a decoder; consumes the 5 initialization bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `input` is shorter than 5 bytes.
    pub fn new(input: &'a [u8]) -> Result<Self, CodecError> {
        if input.len() < 5 {
            return Err(CodecError::new("range coder: input shorter than header"));
        }
        let mut code = 0u32;
        for &b in input.get(1..5).unwrap_or_default() {
            code = (code << 8) | b as u32;
        }
        Ok(Self {
            code,
            range: u32::MAX,
            input,
            pos: 5,
        })
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        // Reading a few bytes past the end is normal (the encoder's flush
        // slack); anything more means corrupt input, flagged via `overrun`.
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// True when the decoder has consumed meaningfully more bytes than the
    /// input contains — a sign of corrupt or garbage input. Framing layers
    /// check this to bound the work done on hostile buffers.
    #[inline]
    pub fn overrun(&self) -> bool {
        self.pos > self.input.len() + 16
    }

    #[inline]
    fn normalize(&mut self) {
        while self.range < TOP {
            self.code = (self.code << 8) | self.next_byte() as u32;
            self.range <<= 8;
        }
    }

    /// Decodes one bit under the adaptive probability `prob`.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut Prob) -> u32 {
        // range >> 11 and an 11-bit probability cannot overflow a u32 product.
        let p = u32::from(prob.0);
        let bound = (self.range >> PROB_BITS) * p;
        let bit = if self.code < bound {
            self.range = bound;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            1
        };
        prob.update(bit);
        self.normalize();
        bit
    }

    /// Decodes `count` direct (probability-1/2) bits, MSB first.
    #[inline]
    pub fn decode_direct(&mut self, count: u32) -> u32 {
        let mut value = 0u32;
        for _ in 0..count {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1
            } else {
                0
            };
            value = (value << 1) | bit;
            self.normalize();
        }
        value
    }
}

/// A bit tree: encodes an `n`-bit value MSB-first, with one adaptive
/// probability per tree node (2^n - 1 contexts).
#[derive(Debug, Clone)]
pub struct BitTree {
    probs: Vec<Prob>,
    nbits: u32,
}

impl BitTree {
    /// Creates a tree for `nbits`-wide values.
    pub fn new(nbits: u32) -> Self {
        Self {
            probs: vec![Prob::default(); 1 << nbits],
            nbits,
        }
    }

    /// Encodes `value` (must fit in `nbits`).
    pub fn encode(&mut self, enc: &mut RangeEncoder, value: u32) {
        debug_assert!(value < (1 << self.nbits));
        let mut node = 1usize;
        for i in (0..self.nbits).rev() {
            let bit = (value >> i) & 1;
            enc.encode_bit(&mut self.probs[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    /// Decodes a value.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> u32 {
        let mut node = 1usize;
        for _ in 0..self.nbits {
            // lint:allow(no-panic-in-decode) — node < 2^nbits = probs.len() by the shift structure
            let bit = dec.decode_bit(&mut self.probs[node]);
            node = (node << 1) | bit as usize;
        }
        node as u32 - (1 << self.nbits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip_skewed() {
        // A 90/10 bit stream should compress well below 1 bit/bit.
        let bits: Vec<u32> = (0..10_000).map(|i| u32::from(i % 10 == 0)).collect();
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        for &b in &bits {
            enc.encode_bit(&mut p, b);
        }
        let buf = enc.finish();
        assert!(buf.len() < 10_000 / 8, "no compression: {}", buf.len());
        let mut dec = RangeDecoder::new(&buf).unwrap();
        let mut p = Prob::default();
        for &b in &bits {
            assert_eq!(dec.decode_bit(&mut p), b);
        }
    }

    #[test]
    fn direct_bits_roundtrip() {
        let values: Vec<(u32, u32)> = vec![(0, 1), (1, 1), (0xabc, 12), (u32::MAX >> 2, 30), (5, 3)];
        let mut enc = RangeEncoder::new();
        for &(v, n) in &values {
            enc.encode_direct(v, n);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        for &(v, n) in &values {
            assert_eq!(dec.decode_direct(n), v);
        }
    }

    #[test]
    fn bit_tree_roundtrip() {
        let values: Vec<u32> = (0..500).map(|i| (i * 37) % 256).collect();
        let mut enc_tree = BitTree::new(8);
        let mut enc = RangeEncoder::new();
        for &v in &values {
            enc_tree.encode(&mut enc, v);
        }
        let buf = enc.finish();
        let mut dec_tree = BitTree::new(8);
        let mut dec = RangeDecoder::new(&buf).unwrap();
        for &v in &values {
            assert_eq!(dec_tree.decode(&mut dec), v);
        }
    }

    #[test]
    fn mixed_models_roundtrip() {
        // Interleave adaptive bits, direct bits and tree values to exercise
        // carry propagation.
        let mut enc = RangeEncoder::new();
        let mut p = Prob::default();
        let mut tree = BitTree::new(5);
        for i in 0..2000u32 {
            enc.encode_bit(&mut p, i & 1);
            enc.encode_direct(i % 16, 4);
            tree.encode(&mut enc, i % 32);
        }
        let buf = enc.finish();
        let mut dec = RangeDecoder::new(&buf).unwrap();
        let mut p = Prob::default();
        let mut tree = BitTree::new(5);
        for i in 0..2000u32 {
            assert_eq!(dec.decode_bit(&mut p), i & 1);
            assert_eq!(dec.decode_direct(4), i % 16);
            assert_eq!(tree.decode(&mut dec), i % 32);
        }
    }

    #[test]
    fn short_input_rejected() {
        assert!(RangeDecoder::new(&[0, 1, 2]).is_err());
    }
}
