//! LSB-first bit-level I/O, in the style used by DEFLATE.
//!
//! Bits are packed into bytes starting at the least-significant bit; multi-bit
//! values are written least-significant-bit first, so
//! `write_bits(0b101, 3)` followed by `write_bits(0b11, 2)` produces the byte
//! `0b000_11_101`.

use crate::CodecError;

/// Accumulates bits into a byte buffer, LSB-first.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits accumulated but not yet flushed into `bytes` (low bits valid).
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_acc`).
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `value` (LSB first). `count <= 57`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `count > 57` or `value` has bits set above
    /// `count`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, count: u32) {
        debug_assert!(count <= 57, "bit run too long: {count}");
        debug_assert!(
            count == 64 || value < (1u64 << count),
            "value {value:#x} does not fit in {count} bits"
        );
        self.acc |= value << self.nbits;
        self.nbits += count;
        while self.nbits >= 8 {
            self.bytes.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of complete bytes written so far (excluding pending bits).
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Pads with zero bits to a byte boundary and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push((self.acc & 0xff) as u8);
        }
        self.bytes
    }
}

/// Reads bits from a byte buffer, LSB-first (mirror of [`BitWriter`]).
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next byte index to refill from.
    pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.nbits <= 56 {
            let Some(&b) = self.bytes.get(self.pos) else { break };
            self.acc |= u64::from(b) << self.nbits;
            self.pos += 1;
            self.nbits += 8;
        }
    }

    /// Reads `count` bits (LSB-first).
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `count` bits remain.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u64, CodecError> {
        debug_assert!(count <= 57);
        if self.nbits < count {
            self.refill();
            if self.nbits < count {
                return Err(CodecError::new("bit stream truncated"));
            }
        }
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        let value = self.acc & mask;
        self.acc >>= count;
        self.nbits -= count;
        Ok(value)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? != 0)
    }

    /// Number of bits still available (including buffered padding bits).
    pub fn remaining_bits(&self) -> usize {
        self.nbits as usize + (self.bytes.len() - self.pos) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u64, u32)> = vec![
            (0b1, 1),
            (0b0, 1),
            (0b101, 3),
            (0xdead, 16),
            (0x1f_ffff, 21),
            (0, 7),
            (1, 57),
            (0x123456789, 36),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &(v, n) in &values {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped as padding|write2|write1
    fn lsb_first_layout_matches_deflate_convention() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11, 2);
        let buf = w.finish();
        assert_eq!(buf, vec![0b000_11_101]);
    }

    #[test]
    fn truncation_detected() {
        let mut w = BitWriter::new();
        w.write_bits(0xff, 8);
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        r.read_bits(8).unwrap();
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn empty_reader_has_no_bits() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.remaining_bits(), 0);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn many_single_bits() {
        let mut w = BitWriter::new();
        let bits: Vec<bool> = (0..1000).map(|i| (i * 7) % 3 == 0).collect();
        for &b in &bits {
            w.write_bit(b);
        }
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        for &b in &bits {
            assert_eq!(r.read_bit().unwrap(), b);
        }
    }
}
