//! Property-based round-trip tests across all codecs.

use codec::{by_name, Cm1, Codec, Deflate, FastLz, LzmaLite, Store};
use proptest::prelude::*;

fn codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Store),
        Box::new(Deflate::default()),
        Box::new(LzmaLite::default()),
        Box::new(FastLz::default()),
        Box::new(Cm1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for c in codecs() {
            let packed = c.compress(&data);
            prop_assert_eq!(c.decompress(&packed).unwrap(), data.clone(), "codec {}", c.name());
        }
    }

    #[test]
    fn roundtrip_low_entropy(data in proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b' ')], 0..8192)) {
        for c in codecs() {
            let packed = c.compress(&data);
            prop_assert_eq!(c.decompress(&packed).unwrap(), data.clone(), "codec {}", c.name());
        }
    }

    #[test]
    fn roundtrip_repeated_blocks(block in proptest::collection::vec(any::<u8>(), 1..64), reps in 1usize..200) {
        let data: Vec<u8> = block.iter().copied().cycle().take(block.len() * reps).collect();
        for c in codecs() {
            let packed = c.compress(&data);
            prop_assert_eq!(c.decompress(&packed).unwrap(), data.clone(), "codec {}", c.name());
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        for c in codecs() {
            let _ = c.decompress(&data);
        }
    }
}

#[test]
fn ratio_ordering_on_log_text() {
    // The paper's evaluation depends on gzip < zstd-in-ratio relationships
    // holding: lzma-lite >= deflate > fastlz in ratio on log-like text.
    let mut data = Vec::new();
    for i in 0..20_000 {
        data.extend_from_slice(
            format!(
                "2021-01-15 08:{:02}:{:02}.{:03} INFO blk_17{:06} replicated to 11.187.{}.{} ok\n",
                (i / 60) % 60,
                i % 60,
                i % 1000,
                i,
                i % 256,
                (i * 7) % 256
            )
            .as_bytes(),
        );
    }
    let lzma = by_name("lzma-lite").unwrap().compress(&data).len();
    let defl = by_name("deflate").unwrap().compress(&data).len();
    let fast = by_name("fastlz").unwrap().compress(&data).len();
    assert!(lzma < defl, "lzma {lzma} !< deflate {defl}");
    assert!(defl < fast, "deflate {defl} !< fastlz {fast}");
    assert!(fast < data.len());
}
