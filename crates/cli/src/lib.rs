//! Implementation of the `loggrep` command-line tool.
//!
//! Subcommands:
//!
//! * `compress <input.log> <output.lgb>` — compress a log file into a
//!   CapsuleBox (64 MiB blocks by default, compressed in parallel);
//! * `query <archive.lgb> <command>` — run a grep-like query;
//! * `stat <archive.lgb>` (alias `stats`) — print archive statistics;
//! * `gen <log-name> <bytes> [seed]` — emit a synthetic workload log.
//!
//! Global flags, accepted anywhere on the command line:
//!
//! * `--trace` — enable the [`telemetry`] registry for this run and print a
//!   per-stage breakdown (span tree + counters) to stderr afterwards; a
//!   traced `query` also prints the predicted-vs-actual plan drift report;
//! * `--json` — machine-readable output: `stat --json` prints the archive
//!   statistics as JSON on stdout, and `--trace --json` switches the trace
//!   footer to the telemetry JSON export.
//!
//! Argument parsing is hand-rolled (no CLI dependency); see [`run`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use loggrep::{Archive, CapsuleBox, LogGrep, LogGrepConfig, PlanDrift};
use std::io::{Read, Write};

/// Multi-block container magic (a `.lgb` file is a sequence of
/// length-prefixed CapsuleBoxes).
const FILE_MAGIC: &[u8; 8] = b"LGBFILE1";

/// Block size used by `compress` (the paper's 64 MB log blocks).
pub const BLOCK_SIZE: usize = 64 << 20;

/// Global flags accepted anywhere on the command line.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flags {
    /// `--trace`: enable telemetry and print a per-stage trace footer.
    pub trace: bool,
    /// `--json`: machine-readable output where the subcommand supports it.
    pub json: bool,
}

/// Strips the global flags out of `args`, returning the positional rest.
fn parse_global_flags(args: &[String]) -> (Vec<String>, Flags) {
    let mut flags = Flags::default();
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        match a.as_str() {
            "--trace" => flags.trace = true,
            "--json" => flags.json = true,
            _ => rest.push(a.clone()),
        }
    }
    (rest, flags)
}

/// Runs the CLI with the given arguments (excluding `argv[0]`).
///
/// Returns the process exit code; errors are printed to stderr.
pub fn run(args: &[String]) -> i32 {
    let (args, flags) = parse_global_flags(args);
    if flags.trace {
        telemetry::set_enabled(true);
        telemetry::reset();
    }
    let code = match dispatch(&args, flags) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("loggrep: {e}");
            2
        }
    };
    if flags.trace {
        let snap = telemetry::snapshot();
        if flags.json {
            eprint!("{}", telemetry::export_json(&snap));
        } else {
            eprintln!("-- trace --");
            eprint!("{}", telemetry::export_trace_text(&snap));
        }
    }
    code
}

fn dispatch(args: &[String], flags: Flags) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        print!("{}", usage());
        return Ok(());
    };
    match cmd.as_str() {
        "compress" => {
            let [input, output] = two(rest, "compress <input.log> <output.lgb>")?;
            compress_file(input, output)
        }
        "query" => {
            let [archive, command] = two(rest, "query <archive.lgb> <command>")?;
            query_file(archive, command, flags)
        }
        "stat" | "stats" => {
            let archive = one(rest, "stat <archive.lgb>")?;
            stat_file(archive, flags.json)
        }
        "explain" => {
            let [archive, command] = two(rest, "explain <archive.lgb> <command>")?;
            explain_file(archive, command)
        }
        "gen" => gen_log(rest),
        "help" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "loggrep — compress cloud logs and grep them without full decompression\n\
     \n\
     USAGE:\n\
     \x20 loggrep compress <input.log> <output.lgb>   compress a log file\n\
     \x20 loggrep query <archive.lgb> <command>       run a grep-like query\n\
     \x20 loggrep stat <archive.lgb>                  print archive statistics\n\
     \x20                                             (alias: stats)\n\
     \x20 loggrep explain <archive.lgb> <command>     show the query plan\n\
     \x20 loggrep gen <log-name> <bytes> [seed]       print a synthetic log\n\
     \n\
     GLOBAL FLAGS:\n\
     \x20 --trace   print a per-stage timing/counter breakdown to stderr;\n\
     \x20           a traced query also reports plan-vs-execution drift\n\
     \x20 --json    machine-readable output (stat --json; --trace --json)\n\
     \n\
     QUERY LANGUAGE:\n\
     \x20 search strings joined by and / or / not (left-associative), e.g.\n\
     \x20   loggrep query app.lgb 'ERROR and dst:11.8.* not state:503'\n\
     \x20 a `*` wildcard matches within a single token only.\n"
        .to_string()
}

fn one<'a>(args: &'a [String], usage: &str) -> Result<&'a str, String> {
    match args {
        [a] => Ok(a),
        _ => Err(format!("expected arguments: {usage}")),
    }
}

fn two<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 2], String> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(format!("expected arguments: {usage}")),
    }
}

/// Compresses `input` into a multi-block `.lgb` archive, one CapsuleBox per
/// 64 MiB of raw log, blocks compressed in parallel on the worker pool.
///
/// A failed block aborts the whole run with that block's error — nothing is
/// written to `output` (previously a failure became an empty block and a
/// corrupt archive).
pub fn compress_file(input: &str, output: &str) -> Result<(), String> {
    let raw = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
    let blocks = split_blocks(&raw);

    // One pool level is enough: with several blocks, parallelize across
    // blocks and keep each engine serial; a single block instead keeps the
    // pool for the engine's internal capsule/extract fan-out.
    let engine_threads = if blocks.len() > 1 { 1 } else { 0 };
    let engine = LogGrep::new(LogGrepConfig {
        threads: engine_threads,
        ..LogGrepConfig::default()
    });
    let block_pool = pool::Pool::from_env();
    let boxes = block_pool
        .try_map(&blocks, |_, block| engine.compress(block).map(|b| b.to_bytes()))
        .map_err(|e| e.to_string())?;

    let mut out = Vec::new();
    out.extend_from_slice(FILE_MAGIC);
    for b in &boxes {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
        out.extend_from_slice(b);
    }
    std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
    println!(
        "compressed {} -> {} ({:.2}x, {} block(s))",
        human(raw.len()),
        human(out.len()),
        raw.len() as f64 / out.len().max(1) as f64,
        blocks.len()
    );
    Ok(())
}

/// Splits raw logs into ~[`BLOCK_SIZE`] blocks on line boundaries.
fn split_blocks(raw: &[u8]) -> Vec<&[u8]> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < raw.len() {
        let mut end = start.saturating_add(BLOCK_SIZE).min(raw.len());
        if end < raw.len() {
            // Extend to the next newline so lines never straddle blocks.
            while end < raw.len() && raw.get(end - 1) != Some(&b'\n') {
                end += 1;
            }
        }
        blocks.push(raw.get(start..end).unwrap_or_default());
        start = end;
    }
    if blocks.is_empty() {
        blocks.push(&[]);
    }
    blocks
}

/// Opens a `.lgb` file into its per-block archives.
pub fn open_file(path: &str) -> Result<Vec<Archive>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    open_bytes(&bytes)
}

fn open_bytes(bytes: &[u8]) -> Result<Vec<Archive>, String> {
    if bytes.get(..8) != Some(FILE_MAGIC.as_slice()) {
        return Err("not a loggrep archive (bad magic)".to_string());
    }
    let mut archives = Vec::new();
    let mut rest = bytes.get(8..).unwrap_or_default();
    while !rest.is_empty() {
        let Some((header, tail)) = rest.split_first_chunk::<8>() else {
            return Err("truncated block header".to_string());
        };
        let len = usize::try_from(u64::from_le_bytes(*header))
            .map_err(|_| "block length overflow".to_string())?;
        let Some(block) = tail.get(..len) else {
            return Err("truncated block".to_string());
        };
        archives.push(Archive::from_bytes(block).map_err(|e| e.to_string())?);
        rest = tail.get(len..).unwrap_or_default();
    }
    Ok(archives)
}

fn query_file(path: &str, command: &str, flags: Flags) -> Result<(), String> {
    let archives = open_file(path)?;
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let mut total = 0usize;
    let mut drift = PlanDrift::default();
    let mut plan_elapsed = std::time::Duration::ZERO;
    let mut elapsed = std::time::Duration::ZERO;
    for archive in &archives {
        let result = archive.query(command).map_err(|e| e.to_string())?;
        for line in &result.lines {
            w.write_all(line).and_then(|_| w.write_all(b"\n"))
                .map_err(|e| e.to_string())?;
        }
        total += result.lines.len();
        if flags.trace {
            // Satellite check: how far did the executed query drift from
            // what the planner predicted without decompressing anything?
            let explanation = archive.explain(command).map_err(|e| e.to_string())?;
            drift.absorb(&explanation.drift(&result.stats));
            plan_elapsed += result.stats.plan_elapsed;
            elapsed += result.stats.elapsed;
        }
    }
    // Under `--trace --json` stderr carries the telemetry JSON alone, so a
    // consumer can parse it without filtering out the human summary.
    if flags.trace && flags.json {
        return Ok(());
    }
    eprintln!("({total} matching line(s))");
    if flags.trace {
        eprintln!(
            "plan {:.3} ms / execute {:.3} ms",
            plan_elapsed.as_secs_f64() * 1e3,
            elapsed.saturating_sub(plan_elapsed).as_secs_f64() * 1e3,
        );
        eprint!("{drift}");
    }
    Ok(())
}

fn explain_file(path: &str, command: &str) -> Result<(), String> {
    for (i, archive) in open_file(path)?.iter().enumerate() {
        println!("-- block {i} --");
        print!("{}", archive.explain(command).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn stat_file(path: &str, json: bool) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    print!("{}", stat_report(&bytes, json)?);
    Ok(())
}

/// Renders archive statistics from serialized `.lgb` bytes, as aligned text
/// or a JSON object.
fn stat_report(bytes: &[u8], json: bool) -> Result<String, String> {
    let archives = open_bytes(bytes)?;
    let mut lines = 0u64;
    let mut raw = 0u64;
    let mut groups = 0usize;
    let mut capsules = 0usize;
    for a in &archives {
        let b = a.capsule_box();
        lines += b.total_lines as u64;
        raw += b.raw_size;
        groups += b.groups.len();
        capsules += b.capsules.len();
    }
    let ratio = raw as f64 / bytes.len().max(1) as f64;
    if json {
        return Ok(format!(
            "{{\n  \"blocks\": {},\n  \"lines\": {lines},\n  \"raw_bytes\": {raw},\n  \
             \"stored_bytes\": {},\n  \"ratio\": {ratio:.4},\n  \"groups\": {groups},\n  \
             \"capsules\": {capsules}\n}}\n",
            archives.len(),
            bytes.len(),
        ));
    }
    let mut out = String::new();
    out.push_str(&format!("blocks:        {}\n", archives.len()));
    out.push_str(&format!("lines:         {lines}\n"));
    out.push_str(&format!("raw size:      {}\n", human(raw as usize)));
    out.push_str(&format!("stored size:   {}\n", human(bytes.len())));
    out.push_str(&format!("ratio:         {ratio:.2}x\n"));
    out.push_str(&format!("groups:        {groups}\n"));
    out.push_str(&format!("capsules:      {capsules}\n"));
    Ok(out)
}

fn gen_log(args: &[String]) -> Result<(), String> {
    let (name, size, seed) = match args {
        [n, s] => (n.as_str(), s, 42u64),
        [n, s, seed] => (
            n.as_str(),
            s,
            seed.parse().map_err(|_| "bad seed".to_string())?,
        ),
        _ => return Err("expected arguments: gen <log-name> <bytes> [seed]".to_string()),
    };
    let size: usize = size.parse().map_err(|_| "bad byte count".to_string())?;
    let spec = workloads::by_name(name).ok_or_else(|| {
        let names: Vec<String> = workloads::all_logs().iter().map(|s| s.name.clone()).collect();
        format!("unknown log `{name}`; available: {}", names.join(", "))
    })?;
    let raw = spec.generate(seed, size);
    std::io::stdout()
        .write_all(&raw)
        .map_err(|e| e.to_string())
}

/// Reads all of stdin (used by tests that pipe data through the CLI).
pub fn read_stdin() -> Result<Vec<u8>, String> {
    let mut buf = Vec::new();
    std::io::stdin()
        .read_to_end(&mut buf)
        .map_err(|e| e.to_string())?;
    Ok(buf)
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// A multi-block queryable archive handle (library form of `query`).
pub struct MultiArchive {
    archives: Vec<Archive>,
}

impl MultiArchive {
    /// Compresses raw logs in memory into a multi-block archive.
    pub fn compress(raw: &[u8], config: LogGrepConfig) -> Result<Self, String> {
        let engine = LogGrep::new(config);
        let archives = split_blocks(raw)
            .into_iter()
            .map(|b| engine.compress(b).map(|boxed| engine.open(boxed)))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        Ok(Self { archives })
    }

    /// Runs a query across all blocks, concatenating results in block order.
    pub fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        let mut out = Vec::new();
        for a in &self.archives {
            out.extend(a.query(command).map_err(|e| e.to_string())?.lines);
        }
        Ok(out)
    }

    /// The per-block archives.
    pub fn blocks(&self) -> &[Archive] {
        &self.archives
    }
}

/// Serializes a single CapsuleBox into the `.lgb` container format (used by
/// examples that keep everything in memory).
pub fn single_block_file(boxed: &CapsuleBox) -> Vec<u8> {
    let body = boxed.to_bytes();
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(FILE_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_splitting_respects_lines() {
        let mut raw = Vec::new();
        for i in 0..1000 {
            raw.extend_from_slice(format!("line number {i} with some padding\n").as_bytes());
        }
        let blocks = split_blocks(&raw);
        assert_eq!(blocks.len(), 1); // Small input: one block.
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, raw.len());
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("loggrep-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.log");
        let output = dir.join("out.lgb");
        let spec = workloads::by_name("Log C").unwrap();
        std::fs::write(&input, spec.generate(5, 128 * 1024)).unwrap();

        compress_file(input.to_str().unwrap(), output.to_str().unwrap()).unwrap();
        let archives = open_file(output.to_str().unwrap()).unwrap();
        assert_eq!(archives.len(), 1);
        let hits = archives[0].query("finished batch").unwrap();
        assert!(!hits.lines.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_archive_in_memory() {
        let spec = workloads::by_name("Log H").unwrap();
        let raw = spec.generate(9, 64 * 1024);
        let multi = MultiArchive::compress(&raw, LogGrepConfig::default()).unwrap();
        assert_eq!(multi.blocks().len(), 1);
        let hits = multi.query("gc pause").unwrap();
        assert!(!hits.is_empty());
    }

    #[test]
    fn open_rejects_garbage() {
        assert!(open_bytes(b"definitely not an archive").is_err());
        assert!(open_bytes(b"").is_err());
        let mut bad = FILE_MAGIC.to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(open_bytes(&bad).is_err());
    }

    #[test]
    fn usage_lists_subcommands() {
        let u = usage();
        for cmd in ["compress", "query", "stat", "stats", "explain", "gen", "--trace", "--json"] {
            assert!(u.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn global_flags_strip_anywhere() {
        let args: Vec<String> = ["--trace", "stat", "a.lgb", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, flags) = parse_global_flags(&args);
        assert!(flags.trace);
        assert!(flags.json);
        assert_eq!(rest, vec!["stat".to_string(), "a.lgb".to_string()]);
    }

    #[test]
    fn stat_report_text_and_json() {
        let spec = workloads::by_name("Log C").unwrap();
        let boxed = LogGrep::new(LogGrepConfig::default())
            .compress(&spec.generate(3, 64 * 1024))
            .unwrap();
        let bytes = single_block_file(&boxed);
        let text = stat_report(&bytes, false).unwrap();
        assert!(text.contains("blocks:        1"), "{text}");
        assert!(text.contains("ratio:"), "{text}");
        let json = stat_report(&bytes, true).unwrap();
        assert!(json.contains("\"blocks\": 1"), "{json}");
        for key in ["lines", "raw_bytes", "stored_bytes", "ratio", "groups", "capsules"] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
