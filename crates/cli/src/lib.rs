//! Implementation of the `loggrep` command-line tool.
//!
//! Subcommands:
//!
//! * `compress <input.log> <output.lgb>` — compress a log file into a
//!   CapsuleBox (64 MiB blocks by default, compressed in parallel);
//! * `query <archive.lgb> <command>` — run a grep-like query;
//! * `query <archive.lgb> [filter] --agg <spec>` — run an aggregate
//!   (`count`, `count-by-template`, `top-K t<T>.v<V>`, `histogram <bucket>`)
//!   pushed down to the cheapest storage layer, optionally restricted to
//!   the lines a filter command matches;
//! * `stat <archive.lgb>` (alias `stats`) — print archive statistics;
//! * `gen <log-name> <bytes> [seed]` — emit a synthetic workload log;
//! * `trace <archive.lgb> <command>` — run a query with the trace journal
//!   (and optionally the sampling profiler) on, emitting a Chrome
//!   trace-event file for Perfetto / `chrome://tracing` and/or
//!   flamegraph-collapsed stacks;
//! * `serve-metrics <addr>` — serve `/metrics` (Prometheus text),
//!   `/healthz`, and `/trace/last.json` over plain HTTP;
//! * `cluster <log-name> <bytes> <command> [seed]` — fault-tolerance demo:
//!   ingest a synthetic log into a replicated in-process cluster over a
//!   seeded simulated network, then run the query healthy, with a crashed
//!   node (replicas cover it), and with a partition (partial results).
//!
//! Global flags, accepted anywhere on the command line:
//!
//! * `--trace` — enable the [`telemetry`] registry for this run and print a
//!   per-stage breakdown (span tree + counters) to stderr afterwards; a
//!   traced `query` also prints the predicted-vs-actual plan drift report;
//! * `--trace-out FILE` — additionally record the trace journal and write
//!   it as Chrome trace-event JSON to `FILE` when the run finishes
//!   (implies telemetry on, like `--trace`);
//! * `--json` — machine-readable output: `stat --json` prints the archive
//!   statistics as JSON on stdout, and `--trace --json` switches the trace
//!   footer to the telemetry JSON export.
//!
//! Argument parsing is hand-rolled (no CLI dependency); see [`run`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use loggrep::{AggResult, AggSpec, Archive, CapsuleBox, LogGrep, LogGrepConfig, PlanDrift};
use std::io::{Read, Write};

/// Multi-block container magic (a `.lgb` file is a sequence of
/// length-prefixed CapsuleBoxes).
const FILE_MAGIC: &[u8; 8] = b"LGBFILE1";

/// Block size used by `compress` (the paper's 64 MB log blocks).
pub const BLOCK_SIZE: usize = 64 << 20;

/// Global flags accepted anywhere on the command line.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    /// `--trace`: enable telemetry and print a per-stage trace footer.
    pub trace: bool,
    /// `--json`: machine-readable output where the subcommand supports it.
    pub json: bool,
    /// `--trace-out FILE`: record the trace journal and write it as Chrome
    /// trace-event JSON to `FILE` after the run (implies telemetry on).
    pub trace_out: Option<String>,
}

/// Strips the global flags out of `args`, returning the positional rest.
fn parse_global_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut flags = Flags::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--trace" => flags.trace = true,
            "--json" => flags.json = true,
            "--trace-out" => {
                let file = iter
                    .next()
                    .ok_or_else(|| "--trace-out needs a file argument".to_string())?;
                flags.trace_out = Some(file.clone());
            }
            other => match other.strip_prefix("--trace-out=") {
                Some(file) if !file.is_empty() => flags.trace_out = Some(file.to_string()),
                Some(_) => return Err("--trace-out needs a file argument".to_string()),
                None => rest.push(a.clone()),
            },
        }
    }
    Ok((rest, flags))
}

/// Runs the CLI with the given arguments (excluding `argv[0]`).
///
/// Returns the process exit code; errors are printed to stderr.
pub fn run(args: &[String]) -> i32 {
    let (args, flags) = match parse_global_flags(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("loggrep: {e}");
            return 2;
        }
    };
    if flags.trace || flags.trace_out.is_some() {
        telemetry::set_enabled(true);
        telemetry::reset();
    }
    if flags.trace_out.is_some() {
        telemetry::set_journal_enabled(true);
        telemetry::clear_journal();
    }
    let code = match dispatch(&args, &flags) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("loggrep: {e}");
            2
        }
    };
    if let Some(path) = &flags.trace_out {
        let events = telemetry::journal_events();
        let json = telemetry::export_chrome_trace(&events);
        match std::fs::write(path, json) {
            Ok(()) => eprintln!("trace journal: {} event(s) -> {path}", events.len()),
            Err(e) => {
                eprintln!("loggrep: write {path}: {e}");
                return 2;
            }
        }
    }
    if flags.trace {
        let snap = telemetry::snapshot();
        if flags.json {
            eprint!("{}", telemetry::export_json(&snap));
        } else {
            eprintln!("-- trace --");
            eprint!("{}", telemetry::export_trace_text(&snap));
        }
    }
    code
}

fn dispatch(args: &[String], flags: &Flags) -> Result<(), String> {
    let Some((cmd, rest)) = args.split_first() else {
        print!("{}", usage());
        return Ok(());
    };
    match cmd.as_str() {
        "compress" => {
            let [input, output] = two(rest, "compress <input.log> <output.lgb>")?;
            compress_file(input, output)
        }
        "query" => {
            const USAGE: &str = "query <archive.lgb> [filter] [--agg <spec>]";
            let (positional, agg) = split_agg_flag(rest)?;
            match (&positional[..], agg) {
                ([archive, command], None) => query_file(archive, command, flags),
                ([archive], Some(spec)) => query_agg_file(archive, None, spec, flags),
                ([archive, filter], Some(spec)) => {
                    query_agg_file(archive, Some(filter), spec, flags)
                }
                _ => Err(format!("expected arguments: {USAGE}")),
            }
        }
        "stat" | "stats" => {
            let archive = one(rest, "stat <archive.lgb>")?;
            stat_file(archive, flags.json)
        }
        "explain" => {
            let [archive, command] = two(rest, "explain <archive.lgb> <command>")?;
            explain_file(archive, command)
        }
        "trace" => trace_cmd(rest),
        "serve-metrics" => serve_metrics_cmd(rest),
        "cluster" => cluster_demo(rest),
        "gen" => gen_log(rest),
        "help" => {
            print!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

/// The help text.
pub fn usage() -> String {
    "loggrep — compress cloud logs and grep them without full decompression\n\
     \n\
     USAGE:\n\
     \x20 loggrep compress <input.log> <output.lgb>   compress a log file\n\
     \x20 loggrep query <archive.lgb> <command>       run a grep-like query\n\
     \x20 loggrep query <archive.lgb> [filter] --agg <spec>\n\
     \x20                                             run an aggregate (count, count-by-template,\n\
     \x20                                             top-K t<T>.v<V>, histogram <bucket>) pushed\n\
     \x20                                             to the cheapest storage layer\n\
     \x20 loggrep stat <archive.lgb>                  print archive statistics\n\
     \x20                                             (alias: stats)\n\
     \x20 loggrep explain <archive.lgb> <command>     show the query plan\n\
     \x20 loggrep gen <log-name> <bytes> [seed]       print a synthetic log\n\
     \x20 loggrep trace <archive.lgb> <command> [--out FILE] [--collapsed FILE] [--sample HZ]\n\
     \x20                                             run a query with the trace journal on;\n\
     \x20                                             emit Chrome trace-event JSON (Perfetto /\n\
     \x20                                             chrome://tracing) and collapsed stacks\n\
     \x20 loggrep serve-metrics <addr> [seconds]      serve /metrics (Prometheus), /healthz,\n\
     \x20                                             and /trace/last.json over HTTP\n\
     \x20 loggrep cluster <log-name> <bytes> <command> [seed]\n\
     \x20                                             fault-tolerance demo: query a replicated\n\
     \x20                                             in-process cluster healthy, with a node\n\
     \x20                                             crashed, and with a partition (partial\n\
     \x20                                             results)\n\
     \n\
     GLOBAL FLAGS:\n\
     \x20 --trace          print a per-stage timing/counter breakdown to stderr;\n\
     \x20                  a traced query also reports plan-vs-execution drift\n\
     \x20 --trace-out FILE record the trace journal; write Chrome trace JSON to FILE\n\
     \x20 --json           machine-readable output (stat --json; --trace --json)\n\
     \n\
     QUERY LANGUAGE:\n\
     \x20 search strings joined by and / or / not (left-associative), e.g.\n\
     \x20   loggrep query app.lgb 'ERROR and dst:11.8.* not state:503'\n\
     \x20 a `*` wildcard matches within a single token only.\n\
     \n\
     AGGREGATES (`--agg`):\n\
     \x20 count                count matching lines\n\
     \x20 count-by-template    lines per static template (never decompresses)\n\
     \x20 top-3 t0.v2          most frequent values of template 0, slot 2\n\
     \x20 histogram 1000       matching lines per 1000-line bucket, e.g.\n\
     \x20   loggrep query app.lgb 'ERROR' --agg count-by-template --json\n"
        .to_string()
}

fn one<'a>(args: &'a [String], usage: &str) -> Result<&'a str, String> {
    match args {
        [a] => Ok(a),
        _ => Err(format!("expected arguments: {usage}")),
    }
}

fn two<'a>(args: &'a [String], usage: &str) -> Result<[&'a str; 2], String> {
    match args {
        [a, b] => Ok([a, b]),
        _ => Err(format!("expected arguments: {usage}")),
    }
}

/// Splits `--agg <spec>` (or `--agg=<spec>`) out of a `query` argument
/// list, returning the remaining positionals and the aggregate spec.
fn split_agg_flag(args: &[String]) -> Result<(Vec<&str>, Option<&str>), String> {
    let mut positional = Vec::new();
    let mut agg = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--agg" => {
                let spec = iter
                    .next()
                    .ok_or_else(|| "--agg needs an aggregate spec".to_string())?;
                agg = Some(spec.as_str());
            }
            other => match other.strip_prefix("--agg=") {
                Some(spec) if !spec.is_empty() => agg = Some(spec),
                Some(_) => return Err("--agg needs an aggregate spec".to_string()),
                None => positional.push(other),
            },
        }
    }
    Ok((positional, agg))
}

/// Compresses `input` into a multi-block `.lgb` archive, one CapsuleBox per
/// 64 MiB of raw log, blocks compressed in parallel on the worker pool.
///
/// A failed block aborts the whole run with that block's error — nothing is
/// written to `output` (previously a failure became an empty block and a
/// corrupt archive).
pub fn compress_file(input: &str, output: &str) -> Result<(), String> {
    let raw = std::fs::read(input).map_err(|e| format!("read {input}: {e}"))?;
    let blocks = split_blocks(&raw);

    // One pool level is enough: with several blocks, parallelize across
    // blocks and keep each engine serial; a single block instead keeps the
    // pool for the engine's internal capsule/extract fan-out.
    let engine_threads = if blocks.len() > 1 { 1 } else { 0 };
    let engine = LogGrep::new(LogGrepConfig {
        threads: engine_threads,
        ..LogGrepConfig::default()
    });
    let block_pool = pool::Pool::from_env();
    let boxes = block_pool
        .try_map(&blocks, |_, block| engine.compress(block).map(|b| b.to_bytes()))
        .map_err(|e| e.to_string())?;

    let mut out = Vec::new();
    out.extend_from_slice(FILE_MAGIC);
    for b in &boxes {
        out.extend_from_slice(&(b.len() as u64).to_le_bytes());
        out.extend_from_slice(b);
    }
    std::fs::write(output, &out).map_err(|e| format!("write {output}: {e}"))?;
    println!(
        "compressed {} -> {} ({:.2}x, {} block(s))",
        human(raw.len()),
        human(out.len()),
        raw.len() as f64 / out.len().max(1) as f64,
        blocks.len()
    );
    Ok(())
}

/// Splits raw logs into ~[`BLOCK_SIZE`] blocks on line boundaries.
fn split_blocks(raw: &[u8]) -> Vec<&[u8]> {
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < raw.len() {
        let mut end = start.saturating_add(BLOCK_SIZE).min(raw.len());
        if end < raw.len() {
            // Extend to the next newline so lines never straddle blocks.
            while end < raw.len() && raw.get(end - 1) != Some(&b'\n') {
                end += 1;
            }
        }
        blocks.push(raw.get(start..end).unwrap_or_default());
        start = end;
    }
    if blocks.is_empty() {
        blocks.push(&[]);
    }
    blocks
}

/// Opens a `.lgb` file into its per-block archives.
pub fn open_file(path: &str) -> Result<Vec<Archive>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    open_bytes(&bytes)
}

fn open_bytes(bytes: &[u8]) -> Result<Vec<Archive>, String> {
    if bytes.get(..8) != Some(FILE_MAGIC.as_slice()) {
        return Err("not a loggrep archive (bad magic)".to_string());
    }
    let mut archives = Vec::new();
    let mut rest = bytes.get(8..).unwrap_or_default();
    while !rest.is_empty() {
        let Some((header, tail)) = rest.split_first_chunk::<8>() else {
            return Err("truncated block header".to_string());
        };
        let len = usize::try_from(u64::from_le_bytes(*header))
            .map_err(|_| "block length overflow".to_string())?;
        let Some(block) = tail.get(..len) else {
            return Err("truncated block".to_string());
        };
        archives.push(Archive::from_bytes(block).map_err(|e| e.to_string())?);
        rest = tail.get(len..).unwrap_or_default();
    }
    Ok(archives)
}

fn query_file(path: &str, command: &str, flags: &Flags) -> Result<(), String> {
    let archives = open_file(path)?;
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let mut total = 0usize;
    let mut drift = PlanDrift::default();
    let mut plan_elapsed = std::time::Duration::ZERO;
    let mut elapsed = std::time::Duration::ZERO;
    for archive in &archives {
        let result = archive.query(command).map_err(|e| e.to_string())?;
        for line in &result.lines {
            w.write_all(line).and_then(|_| w.write_all(b"\n"))
                .map_err(|e| e.to_string())?;
        }
        total += result.lines.len();
        if flags.trace {
            // Satellite check: how far did the executed query drift from
            // what the planner predicted without decompressing anything?
            let explanation = archive.explain(command).map_err(|e| e.to_string())?;
            drift.absorb(&explanation.drift(&result.stats));
            plan_elapsed += result.stats.plan_elapsed;
            elapsed += result.stats.elapsed;
        }
    }
    // Under `--trace --json` stderr carries the telemetry JSON alone, so a
    // consumer can parse it without filtering out the human summary.
    if flags.trace && flags.json {
        return Ok(());
    }
    eprintln!("({total} matching line(s))");
    if flags.trace {
        eprintln!(
            "plan {:.3} ms / execute {:.3} ms",
            plan_elapsed.as_secs_f64() * 1e3,
            elapsed.saturating_sub(plan_elapsed).as_secs_f64() * 1e3,
        );
        eprint!("{drift}");
    }
    Ok(())
}

/// `query <archive.lgb> [filter] --agg <spec>`: runs an aggregate across
/// all blocks, merging per-block distributions (global line numbers via
/// per-block offsets) so a multi-block archive answers exactly like a
/// single-block one.
fn query_agg_file(
    path: &str,
    filter: Option<&str>,
    spec_text: &str,
    flags: &Flags,
) -> Result<(), String> {
    let spec = AggSpec::parse(spec_text).map_err(|e| e.to_string())?;
    let archives = open_file(path)?;
    let mut merged = AggResult::empty(&spec);
    let mut offset = 0u64;
    let mut layer: Option<loggrep::AggLayer> = None;
    let mut decompressed = 0usize;
    let mut consistent = true;
    for archive in &archives {
        let r = archive
            .query_agg_at(filter, &spec, offset)
            .map_err(|e| e.to_string())?;
        merged.merge(&r.agg).map_err(|e| e.to_string())?;
        offset += u64::from(archive.total_lines());
        layer = layer.max(r.stats.agg_layer);
        decompressed += r.stats.capsules_decompressed;
        if flags.trace {
            let predicted = archive
                .explain_agg(filter, &spec)
                .map_err(|e| e.to_string())?;
            consistent &=
                loggrep::AggDrift::new(predicted, filter.is_some(), &r.stats).consistent();
        }
    }
    if flags.json {
        println!("{}", merged.to_json());
        return Ok(());
    }
    print!("{merged}");
    eprintln!(
        "(answered at the {} layer, {decompressed} capsule(s) decompressed)",
        layer.map_or("metadata", |l| l.name()),
    );
    if flags.trace {
        eprintln!(
            "aggregate drift: {}",
            if consistent { "within plan bounds" } else { "EXCEEDED plan bounds" }
        );
    }
    Ok(())
}

/// `trace <archive.lgb> <command> [--out FILE] [--collapsed FILE]
/// [--sample HZ]`: runs the query with the trace journal on and writes the
/// Chrome trace-event JSON to `--out` (stdout when omitted). `--collapsed`
/// additionally writes flamegraph-collapsed stacks — from the sampling
/// profiler when `--sample HZ` is given, from exact journal timings
/// otherwise.
fn trace_cmd(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "trace <archive.lgb> <command> [--out FILE] [--collapsed FILE] [--sample HZ]";
    let mut positional: Vec<&str> = Vec::new();
    let mut out_file: Option<&str> = None;
    let mut collapsed_file: Option<&str> = None;
    let mut sample_hz: Option<u32> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--out" => {
                out_file = Some(iter.next().ok_or("--out needs a file argument")?);
            }
            "--collapsed" => {
                collapsed_file = Some(iter.next().ok_or("--collapsed needs a file argument")?);
            }
            "--sample" => {
                let hz = iter.next().ok_or("--sample needs a rate in Hz")?;
                sample_hz = Some(hz.parse().map_err(|_| format!("bad sample rate `{hz}`"))?);
            }
            other => positional.push(other),
        }
    }
    let [archive_path, command] = positional[..] else {
        return Err(format!("expected arguments: {USAGE}"));
    };

    telemetry::set_enabled(true);
    telemetry::reset();
    telemetry::set_journal_enabled(true);
    telemetry::clear_journal();
    let archives = open_file(archive_path)?;
    let sampler = sample_hz.map(telemetry::Sampler::start);
    let mut total = 0usize;
    for archive in &archives {
        total = total.saturating_add(
            archive.query(command).map_err(|e| e.to_string())?.lines.len(),
        );
    }
    let report = sampler.map(telemetry::Sampler::stop);

    let events = telemetry::journal_events();
    let chrome = telemetry::export_chrome_trace(&events);
    match out_file {
        Some(path) => {
            std::fs::write(path, chrome).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("trace journal: {} event(s) -> {path}", events.len());
        }
        None => print!("{chrome}"),
    }
    if let Some(path) = collapsed_file {
        let stacks = match &report {
            Some(r) => r.collapsed(),
            None => telemetry::export_collapsed(&events),
        };
        std::fs::write(path, stacks).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("collapsed stacks -> {path}");
    }
    if let Some(r) = &report {
        eprintln!(
            "sampler: {} sample(s) over {} tick(s) in {:.1} ms",
            r.total_samples,
            r.ticks,
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
    eprintln!("({total} matching line(s))");
    Ok(())
}

/// `serve-metrics <addr> [seconds]`: binds the std-only HTTP exporter and
/// serves `/metrics`, `/healthz`, and `/trace/last.json` until killed (or
/// for `seconds`, mainly for scripted smoke tests). Telemetry and the trace
/// journal are enabled so the endpoints have live data.
fn serve_metrics_cmd(args: &[String]) -> Result<(), String> {
    let (addr, secs) = match args {
        [addr] => (addr.as_str(), None),
        [addr, secs] => (
            addr.as_str(),
            Some(
                secs.parse::<u64>()
                    .map_err(|_| format!("bad duration `{secs}`"))?,
            ),
        ),
        _ => return Err("expected arguments: serve-metrics <addr> [seconds]".to_string()),
    };
    telemetry::set_enabled(true);
    telemetry::set_journal_enabled(true);
    let server = telemetry::MetricsServer::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!(
        "serving /metrics /healthz /trace/last.json on http://{}",
        server.local_addr()
    );
    match secs {
        Some(s) => std::thread::sleep(std::time::Duration::from_secs(s)),
        None => loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}

fn explain_file(path: &str, command: &str) -> Result<(), String> {
    for (i, archive) in open_file(path)?.iter().enumerate() {
        println!("-- block {i} --");
        print!("{}", archive.explain(command).map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn stat_file(path: &str, json: bool) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    print!("{}", stat_report(&bytes, json)?);
    Ok(())
}

/// Renders archive statistics from serialized `.lgb` bytes, as aligned text
/// or a JSON object.
fn stat_report(bytes: &[u8], json: bool) -> Result<String, String> {
    let archives = open_bytes(bytes)?;
    let mut lines = 0u64;
    let mut raw = 0u64;
    let mut groups = 0usize;
    let mut capsules = 0usize;
    // Pow2-bucket histogram over compressed capsule sizes, so stat reports
    // the same p50/p95/p99 summaries the live `/metrics` endpoint serves.
    let sizes = telemetry::Histogram::new();
    for a in &archives {
        let b = a.capsule_box();
        lines += b.total_lines as u64;
        raw += b.raw_size;
        groups += b.groups.len();
        capsules += b.capsules.len();
        for c in &b.capsules {
            sizes.record(c.clen);
        }
    }
    let sizes = sizes.snapshot();
    let ratio = raw as f64 / bytes.len().max(1) as f64;
    if json {
        return Ok(format!(
            "{{\n  \"blocks\": {},\n  \"lines\": {lines},\n  \"raw_bytes\": {raw},\n  \
             \"stored_bytes\": {},\n  \"ratio\": {ratio:.4},\n  \"groups\": {groups},\n  \
             \"capsules\": {capsules},\n  \"capsule_bytes\": {{\"p50\": {}, \"p95\": {}, \
             \"p99\": {}, \"max\": {}}}\n}}\n",
            archives.len(),
            bytes.len(),
            sizes.quantile(0.5),
            sizes.quantile(0.95),
            sizes.quantile(0.99),
            sizes.max,
        ));
    }
    let mut out = String::new();
    out.push_str(&format!("blocks:        {}\n", archives.len()));
    out.push_str(&format!("lines:         {lines}\n"));
    out.push_str(&format!("raw size:      {}\n", human(raw as usize)));
    out.push_str(&format!("stored size:   {}\n", human(bytes.len())));
    out.push_str(&format!("ratio:         {ratio:.2}x\n"));
    out.push_str(&format!("groups:        {groups}\n"));
    out.push_str(&format!("capsules:      {capsules}\n"));
    out.push_str(&format!(
        "capsule bytes: p50={} p95={} p99={} max={}\n",
        sizes.quantile(0.5),
        sizes.quantile(0.95),
        sizes.quantile(0.99),
        sizes.max,
    ));
    Ok(out)
}

/// `cluster <log-name> <bytes> <command> [seed]`: the fault-tolerance
/// demo. Ingests a synthetic log into a 3-node cluster with replication 2
/// over a seeded simulated network, then runs the query three ways:
/// healthy, with one node crashed (replica fallback keeps the answer
/// exact), and with a second node partitioned away (partial results with
/// per-shard status). Ends with the fault-path telemetry counters.
fn cluster_demo(args: &[String]) -> Result<(), String> {
    const USAGE: &str = "cluster <log-name> <bytes> <command> [seed]";
    let (name, size, command, seed) = match args {
        [n, s, c] => (n.as_str(), s, c.as_str(), 42u64),
        [n, s, c, seed] => (
            n.as_str(),
            s,
            c.as_str(),
            seed.parse().map_err(|_| "bad seed".to_string())?,
        ),
        _ => return Err(format!("expected arguments: {USAGE}")),
    };
    let size: usize = size.parse().map_err(|_| "bad byte count".to_string())?;
    let spec = workloads::by_name(name).ok_or_else(|| {
        let names: Vec<String> = workloads::all_logs().iter().map(|s| s.name.clone()).collect();
        format!("unknown log `{name}`; available: {}", names.join(", "))
    })?;
    telemetry::set_enabled(true);

    let raw = spec.generate(seed, size);
    let mut c = cluster::Cluster::with_config(cluster::ClusterConfig {
        replication: 2,
        faults: cluster::FaultPlan::seeded(seed),
        ..cluster::ClusterConfig::for_nodes(3, LogGrepConfig::default())
    })
    .map_err(|e| e.to_string())?;
    // 256 KiB blocks: enough blocks that losing two of three nodes
    // visibly costs some shards (a {crashed, partitioned} replica pair).
    let blocks = c
        .ingest(&raw, 256 << 10)
        .map_err(|e| e.to_string())?;
    println!(
        "cluster: 3 nodes, replication 2, {} shard(s), {blocks} block(s) from {}",
        c.shard_map().shards(),
        human(raw.len()),
    );

    let healthy = c.query(command).map_err(|e| e.to_string())?;
    println!(
        "healthy:          {} hit(s), complete={}",
        healthy.lines.len(),
        healthy.complete
    );

    c.crash_node(1);
    let degraded = c.query(command).map_err(|e| e.to_string())?;
    println!(
        "node 1 crashed:   {} hit(s), complete={} (replicas cover the crash)",
        degraded.lines.len(),
        degraded.complete
    );

    c.partition_node(2);
    let partial = c.query(command).map_err(|e| e.to_string())?;
    let failed: Vec<usize> = partial.failed_shards().map(|s| s.shard).collect();
    println!(
        "node 2 partitioned too: {} hit(s), complete={}, failed shard(s): {failed:?}",
        partial.lines.len(),
        partial.complete
    );

    c.restart_node(1);
    c.heal_node(2);
    let recovered = c.query(command).map_err(|e| e.to_string())?;
    println!(
        "recovered:        {} hit(s), complete={}",
        recovered.lines.len(),
        recovered.complete
    );

    let snap = telemetry::snapshot();
    println!(
        "counters: rpc_sent={} rpc_lost={} retries={} hedges={} read_fallback={} \
         timeouts={} shards_failed={} partial_results={}",
        snap.counter("cluster.rpc.sent"),
        snap.counter("cluster.rpc.lost"),
        snap.counter("cluster.retries"),
        snap.counter("cluster.hedges"),
        snap.counter("cluster.read_fallback"),
        snap.counter("cluster.timeouts"),
        snap.counter("cluster.shards_failed"),
        snap.counter("cluster.partial_results"),
    );
    Ok(())
}

fn gen_log(args: &[String]) -> Result<(), String> {
    let (name, size, seed) = match args {
        [n, s] => (n.as_str(), s, 42u64),
        [n, s, seed] => (
            n.as_str(),
            s,
            seed.parse().map_err(|_| "bad seed".to_string())?,
        ),
        _ => return Err("expected arguments: gen <log-name> <bytes> [seed]".to_string()),
    };
    let size: usize = size.parse().map_err(|_| "bad byte count".to_string())?;
    let spec = workloads::by_name(name).ok_or_else(|| {
        let names: Vec<String> = workloads::all_logs().iter().map(|s| s.name.clone()).collect();
        format!("unknown log `{name}`; available: {}", names.join(", "))
    })?;
    let raw = spec.generate(seed, size);
    std::io::stdout()
        .write_all(&raw)
        .map_err(|e| e.to_string())
}

/// Reads all of stdin (used by tests that pipe data through the CLI).
pub fn read_stdin() -> Result<Vec<u8>, String> {
    let mut buf = Vec::new();
    std::io::stdin()
        .read_to_end(&mut buf)
        .map_err(|e| e.to_string())?;
    Ok(buf)
}

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.2} KiB", bytes as f64 / 1024.0)
    } else {
        format!("{bytes} B")
    }
}

/// A multi-block queryable archive handle (library form of `query`).
pub struct MultiArchive {
    archives: Vec<Archive>,
}

impl MultiArchive {
    /// Compresses raw logs in memory into a multi-block archive.
    pub fn compress(raw: &[u8], config: LogGrepConfig) -> Result<Self, String> {
        let engine = LogGrep::new(config);
        let archives = split_blocks(raw)
            .into_iter()
            .map(|b| engine.compress(b).map(|boxed| engine.open(boxed)))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        Ok(Self { archives })
    }

    /// Runs a query across all blocks, concatenating results in block order.
    pub fn query(&self, command: &str) -> Result<Vec<Vec<u8>>, String> {
        let mut out = Vec::new();
        for a in &self.archives {
            out.extend(a.query(command).map_err(|e| e.to_string())?.lines);
        }
        Ok(out)
    }

    /// Runs an aggregate across all blocks, merging per-block results with
    /// cumulative line-number offsets (so `histogram` buckets are global).
    pub fn query_agg(&self, filter: Option<&str>, spec: &AggSpec) -> Result<AggResult, String> {
        let mut merged = AggResult::empty(spec);
        let mut offset = 0u64;
        for a in &self.archives {
            let r = a
                .query_agg_at(filter, spec, offset)
                .map_err(|e| e.to_string())?;
            merged.merge(&r.agg).map_err(|e| e.to_string())?;
            offset += u64::from(a.total_lines());
        }
        Ok(merged)
    }

    /// The per-block archives.
    pub fn blocks(&self) -> &[Archive] {
        &self.archives
    }
}

/// Serializes a single CapsuleBox into the `.lgb` container format (used by
/// examples that keep everything in memory).
pub fn single_block_file(boxed: &CapsuleBox) -> Vec<u8> {
    let body = boxed.to_bytes();
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(FILE_MAGIC);
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_splitting_respects_lines() {
        let mut raw = Vec::new();
        for i in 0..1000 {
            raw.extend_from_slice(format!("line number {i} with some padding\n").as_bytes());
        }
        let blocks = split_blocks(&raw);
        assert_eq!(blocks.len(), 1); // Small input: one block.
        let total: usize = blocks.iter().map(|b| b.len()).sum();
        assert_eq!(total, raw.len());
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("loggrep-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.log");
        let output = dir.join("out.lgb");
        let spec = workloads::by_name("Log C").unwrap();
        std::fs::write(&input, spec.generate(5, 128 * 1024)).unwrap();

        compress_file(input.to_str().unwrap(), output.to_str().unwrap()).unwrap();
        let archives = open_file(output.to_str().unwrap()).unwrap();
        assert_eq!(archives.len(), 1);
        let hits = archives[0].query("finished batch").unwrap();
        assert!(!hits.lines.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multi_archive_in_memory() {
        let spec = workloads::by_name("Log H").unwrap();
        let raw = spec.generate(9, 64 * 1024);
        let multi = MultiArchive::compress(&raw, LogGrepConfig::default()).unwrap();
        assert_eq!(multi.blocks().len(), 1);
        let hits = multi.query("gc pause").unwrap();
        assert!(!hits.is_empty());
    }

    #[test]
    fn open_rejects_garbage() {
        assert!(open_bytes(b"definitely not an archive").is_err());
        assert!(open_bytes(b"").is_err());
        let mut bad = FILE_MAGIC.to_vec();
        bad.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(open_bytes(&bad).is_err());
    }

    #[test]
    fn usage_lists_subcommands() {
        let u = usage();
        for cmd in [
            "compress", "query", "stat", "stats", "explain", "gen", "trace", "serve-metrics",
            "cluster", "--trace", "--trace-out", "--json", "--agg", "count-by-template",
        ] {
            assert!(u.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn agg_flag_forms() {
        let to_args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let args = to_args(&["a.lgb", "--agg", "count"]);
        let (rest, agg) = split_agg_flag(&args).unwrap();
        assert_eq!(rest, vec!["a.lgb"]);
        assert_eq!(agg, Some("count"));
        let args = to_args(&["a.lgb", "ERROR", "--agg=top-3 t0.v1"]);
        let (rest, agg) = split_agg_flag(&args).unwrap();
        assert_eq!(rest, vec!["a.lgb", "ERROR"]);
        assert_eq!(agg, Some("top-3 t0.v1"));
        assert!(split_agg_flag(&to_args(&["a.lgb", "--agg"])).is_err());
        assert!(split_agg_flag(&to_args(&["a.lgb", "--agg="])).is_err());
    }

    #[test]
    fn multi_archive_aggregates_merge_across_blocks() {
        // Force several blocks by compressing block-sized slices manually:
        // compare against a single-block archive over the same bytes.
        let spec = workloads::by_name("Log C").unwrap();
        let raw = spec.generate(11, 96 * 1024);
        let single = MultiArchive::compress(&raw, LogGrepConfig::default()).unwrap();

        // Split on a line boundary near the middle and rebuild a two-block
        // container file, then aggregate through the file path.
        let mid = raw.len() / 2;
        let cut = mid + raw[mid..].iter().position(|&b| b == b'\n').unwrap() + 1;
        let engine = LogGrep::new(LogGrepConfig::default());
        let mut file = FILE_MAGIC.to_vec();
        for part in [&raw[..cut], &raw[cut..]] {
            let body = engine.compress(part).unwrap().to_bytes();
            file.extend_from_slice(&(body.len() as u64).to_le_bytes());
            file.extend_from_slice(&body);
        }
        let blocks = open_bytes(&file).unwrap();
        assert_eq!(blocks.len(), 2);

        for (filter, agg) in [
            (None, "count"),
            (Some("finished batch"), "count"),
            (None, "count-by-template"),
            (None, "histogram 200"),
        ] {
            let spec = AggSpec::parse(agg).unwrap();
            let expected = single.query_agg(filter, &spec).unwrap();
            let mut merged = AggResult::empty(&spec);
            let mut offset = 0u64;
            for b in &blocks {
                let r = b.query_agg_at(filter, &spec, offset).unwrap();
                merged.merge(&r.agg).unwrap();
                offset += u64::from(b.total_lines());
            }
            assert_eq!(merged, expected, "`{agg}` filter {filter:?}");
        }
    }

    #[test]
    fn global_flags_strip_anywhere() {
        let args: Vec<String> = ["--trace", "stat", "a.lgb", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (rest, flags) = parse_global_flags(&args).unwrap();
        assert!(flags.trace);
        assert!(flags.json);
        assert_eq!(rest, vec!["stat".to_string(), "a.lgb".to_string()]);
    }

    #[test]
    fn trace_out_flag_forms() {
        let to_args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let (rest, flags) =
            parse_global_flags(&to_args(&["query", "--trace-out", "t.json", "a.lgb", "x"]))
                .unwrap();
        assert_eq!(flags.trace_out.as_deref(), Some("t.json"));
        assert!(!flags.trace);
        assert_eq!(rest.len(), 3);
        let (_, flags) = parse_global_flags(&to_args(&["--trace-out=u.json", "help"])).unwrap();
        assert_eq!(flags.trace_out.as_deref(), Some("u.json"));
        assert!(parse_global_flags(&to_args(&["--trace-out"])).is_err());
        assert!(parse_global_flags(&to_args(&["--trace-out="])).is_err());
    }

    #[test]
    fn stat_report_text_and_json() {
        let spec = workloads::by_name("Log C").unwrap();
        let boxed = LogGrep::new(LogGrepConfig::default())
            .compress(&spec.generate(3, 64 * 1024))
            .unwrap();
        let bytes = single_block_file(&boxed);
        let text = stat_report(&bytes, false).unwrap();
        assert!(text.contains("blocks:        1"), "{text}");
        assert!(text.contains("ratio:"), "{text}");
        let json = stat_report(&bytes, true).unwrap();
        assert!(json.contains("\"blocks\": 1"), "{json}");
        for key in [
            "lines", "raw_bytes", "stored_bytes", "ratio", "groups", "capsules",
            "capsule_bytes", "p50", "p95", "p99",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key} in {json}");
        }
        assert!(text.contains("capsule bytes: p50="), "{text}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
