//! The `loggrep` binary. See [`cli::usage`] for the interface.

#![forbid(unsafe_code)]

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(cli::run(&args));
}
