//! `--trace-out` end-to-end: a traced query must produce a valid Chrome
//! trace-event JSON file (the format Perfetto / `chrome://tracing` loads).
//!
//! One test function: the telemetry registry and trace journal are
//! process-global, and this integration binary owns its process.

use std::collections::HashMap;
use telemetry::json::{self, Value};

#[test]
fn trace_out_produces_valid_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("loggrep-trace-out-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("in.log");
    let archive = dir.join("a.lgb");
    let trace = dir.join("t.json");
    let spec = workloads::by_name("Log C").unwrap();
    std::fs::write(&input, spec.generate(7, 256 * 1024)).unwrap();

    let to_args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    assert_eq!(
        cli::run(&to_args(&[
            "compress",
            input.to_str().unwrap(),
            archive.to_str().unwrap(),
        ])),
        0
    );
    assert_eq!(
        cli::run(&to_args(&[
            "query",
            "--trace-out",
            trace.to_str().unwrap(),
            archive.to_str().unwrap(),
            spec.queries[0].as_str(),
        ])),
        0
    );

    let src = std::fs::read_to_string(&trace).unwrap();
    let doc = json::parse(&src).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{src}"));
    assert_eq!(doc.str("displayTimeUnit"), Some("ns"));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no events recorded");

    // Schema: every event has name/ph/ts/pid/tid with the right types, and
    // duration events balance per thread (B/E nest like a call stack).
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut saw_query_span = false;
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let name = ev.str("name").expect("event name").to_string();
        let ph = ev.str("ph").expect("event ph");
        let ts = ev.num("ts").expect("event ts (µs)");
        assert!(ts >= 0.0, "negative timestamp {ts}");
        assert!(ts >= last_ts, "events not time-ordered");
        last_ts = ts;
        assert_eq!(ev.num("pid"), Some(1.0));
        let tid = ev.num("tid").expect("event tid") as u64;
        match ph {
            "B" => {
                if name == "query" {
                    saw_query_span = true;
                }
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let top = stacks
                    .entry(tid)
                    .or_default()
                    .pop()
                    .unwrap_or_else(|| panic!("E without B for `{name}` on tid {tid}"));
                assert_eq!(top, name, "mismatched B/E nesting on tid {tid}");
            }
            "C" => {
                ev.get("args")
                    .and_then(|a| a.num("value"))
                    .expect("counter event args.value");
            }
            "i" => {}
            other => panic!("unexpected phase `{other}`"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "unbalanced spans on tid {tid}: {stack:?}");
    }
    assert!(saw_query_span, "no `query` span in trace");

    std::fs::remove_dir_all(&dir).ok();
}
