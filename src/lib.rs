//! Umbrella crate for the LogGrep reproduction workspace.
//!
//! The real content lives in the member crates:
//!
//! * [`loggrep`] — the paper's system (compression + query engine);
//! * [`codec`], [`strsearch`], [`logparse`] — substrates built from scratch;
//! * [`baselines`] — gzip+grep, CLP, and the MiniEs comparators;
//! * [`workloads`] — the 37 synthetic log types and their queries.
//!
//! This crate hosts the workspace-spanning integration tests (`tests/`) and
//! the runnable examples (`examples/`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use baselines;
pub use codec;
pub use loggrep;
pub use logparse;
pub use strsearch;
pub use workloads;
