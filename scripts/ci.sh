#!/usr/bin/env bash
# CI gate: release build, full test suite, and clippy with warnings denied.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
