#!/usr/bin/env bash
# CI gate: release build, full test suite at two worker-pool sizes, clippy
# with warnings denied, and the thread-scaling benchmark.
# Run from anywhere; operates on the repository this script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# The whole suite must pass with the pool forced serial and forced wide:
# parallel code paths are required to be behaviorally identical to serial
# ones (see crates/loggrep/tests/parallel_determinism.rs).
LOGGREP_THREADS=1 cargo test -q
LOGGREP_THREADS=4 cargo test -q

cargo clippy --all-targets -- -D warnings

# Thread-scaling benchmark; BENCH_parallel.json records wall times, speedups
# vs serial, and the per-stage telemetry breakdown for each thread count.
./target/release/parallel_scaling --threads 1,2,4 --out BENCH_parallel.json
