#!/usr/bin/env bash
# CI gate: static analysis, release build, full test suite at two
# worker-pool sizes, clippy with warnings denied, and the thread-scaling
# benchmark. Run from anywhere; operates on the repository this script
# lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release

# Hard gate: the in-tree static analyzer (crates/lint) must report zero
# diagnostics. It enforces the untrusted-input taint rules, the
# concurrency pack (lock-order cycles, blocking under locks/in pool
# workers), and the hygiene pack described in DESIGN.md §"Static
# analysis v2"; suppressions require a live
# `// lint:allow(<rule>) — <reason>` comment (stale hatches are
# themselves diagnostics). The gating run is cold (--no-cache) and
# budgeted: >10 s wall fails CI. BENCH_lint.json records wall time,
# files analyzed, and the cache hit rate; lint.json / lint.sarif are the
# machine-readable artifacts (empty when the tree is clean).
cargo run -q --release -p lint -- --json > lint.json || true
cargo run -q --release -p lint -- --sarif > lint.sarif || true
cargo run -q --release -p lint -- --no-cache --max-ms 10000 \
    --bench-out BENCH_lint.json

# The whole suite must pass with the pool forced serial and forced wide:
# parallel code paths are required to be behaviorally identical to serial
# ones (see crates/loggrep/tests/parallel_determinism.rs).
LOGGREP_THREADS=1 cargo test -q
LOGGREP_THREADS=4 cargo test -q

# Workspace-wide (the root package's `cargo test`/`cargo clippy` silently
# skip crates it does not depend on, e.g. lint and difftest).
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Differential fuzzing smoke: a bounded seeded run of the whole engine
# matrix (full, SP, every §6.3 ablation, at 1 and 4 threads, plus the
# baselines) against the naive oracle. Failures are shrunk and written to
# crates/difftest/corpus/ for replay; the committed corpus itself is
# replayed as part of `cargo test` (crates/difftest/tests/replay.rs).
# BENCH_difftest.json records throughput (cases/sec).
./target/release/difftest --seed 5 --cases 200 --budget-secs 120 \
    --bench-out BENCH_difftest.json

# Aggregate-oracle smoke: each case runs one aggregate verb (count,
# count-by-template, top-K, histogram; ~half under a filter) through the
# same engine matrix at 1 and 4 threads and compares the merged
# multi-block result against a naive raw-line oracle. Also enforces the
# pushdown contract (unfiltered metadata verbs decompress zero Capsules;
# dictionary top-K at most one) and the aggregate cache contract.
# BENCH_aggregates.json records cases and decompression checks.
./target/release/difftest --aggregates --seed 5 --cases 60 \
    --budget-secs 120 --bench-out BENCH_aggregates.json

# Cluster fault-tolerance suites: the root `cargo test` above only covers
# the root package, so run the cluster crate's own tests (SimNet
# determinism, ingest rollback, replica read-fallback, fault schedules)
# explicitly.
cargo test -q -p cluster

# Cluster-under-faults oracle smoke: bounded seeded sweeps where each case
# ingests a generated log into a replicated cluster over a seeded fault
# schedule (drops, slow nodes, crashes, partitions) and checks the
# partial-results contract against the naive oracle. Fault decisions are a
# pure function of the seed and all time is virtual, so the runs are
# deterministic and need no ABBA/median timing estimators (nothing here is
# wall-clock-sensitive). BENCH_cluster_faults.json records cases run,
# faults injected, fallbacks taken, and (required zero) disagreements.
./target/release/difftest --cluster-faults --seed 5 --cases 40 \
    --budget-secs 120 --bench-out BENCH_cluster_faults.json

# Optional: run the tiny roundtrip under Miri when a nightly toolchain
# with Miri is installed; skip gracefully (with a note) everywhere else.
if command -v rustup >/dev/null 2>&1 \
    && rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'miri.*(installed)'; then
    cargo +nightly miri test -p loggrep --test miri_roundtrip
else
    echo "ci: miri not available (nightly toolchain + miri component); skipping"
fi

# Observability smoke: scrape /metrics, /healthz, and /trace/last.json
# over real TCP (std TcpStream, no curl) and schema-check the Chrome
# trace JSON a traced query emits.
cargo test -q -p telemetry --test http
cargo test -q -p cli --test trace_out

# Thread-scaling benchmark; BENCH_parallel.json records wall times, speedups
# vs serial, and the per-stage telemetry breakdown for each thread count.
./target/release/parallel_scaling --threads 1,2,4 --out BENCH_parallel.json

# Perf-regression gate: append one hot-path run (compress MB/s, selective
# and scan latency, sampler overhead) to the committed trajectory and fail
# on a >25% regression vs the median of the previous runs (or >5% sampler
# overhead). The gate is a two-sided ratchet: confirmed improvements are
# recorded as `baseline` markers that pin future comparison windows. See
# DESIGN.md "Perf-regression tracking".
./target/release/hotpath --label ci --out BENCH_hotpath.json --check
